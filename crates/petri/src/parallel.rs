//! Work-stealing parallel frontier-exploration driver.
//!
//! Both the exhaustive [`ReachabilityGraph`](crate::ReachabilityGraph) and
//! the stubborn-set-reduced engine of the `partial-order` crate are
//! breadth-first fixed-point loops over a hashed set of visited markings.
//! This module factors that loop into a reusable engine that scales across
//! cores using only the standard library:
//!
//! * a **sharded state index** — `2^k` mutex-guarded `HashMap<Marking, u32>`
//!   shards keyed by marking hash, so concurrent inserts rarely contend;
//! * **per-worker deques with stealing** — each worker owns a
//!   `Mutex<VecDeque>` it pushes and pops at the back (the critical
//!   sections are a handful of pointer moves, so the mutex is effectively
//!   a spin-length lock), while idle workers steal batches from the
//!   *front* of a victim chosen in randomized order, chase-lev style;
//! * a **global injector** queue holding the seed/resume frontier in
//!   increasing id order, drained in batches before any stealing happens;
//! * an **idle/termination protocol** — an atomic in-flight counter
//!   (`pending`: a state counts from enqueue until its expansion has been
//!   folded back in) plus a condvar guarded by a small control mutex.
//!   Exploration is complete exactly when `pending` hits zero; a worker
//!   with nothing to run or steal registers as a sleeper and waits, and
//!   every notification is raised while holding the control mutex, so a
//!   sleeper can never miss the wake-up that matters (see the termination
//!   argument in `DESIGN.md`);
//! * **worker-local result buffers** (labelled edges, origins, deadlocks)
//!   merged after `std::thread::scope` joins, so the hot loop never
//!   serializes on a global result vector.
//!
//! # Resource governance
//!
//! Every worker consults the caller's [`Budget`] before taking an item and
//! again **before every successor insertion**. When any axis (states,
//! bytes, deadline, cancellation) is exhausted mid-expansion, the worker
//! rolls the expansion back — recorded edges are truncated and the state
//! stays unexpanded, so a resumed run re-expands it exactly once — and the
//! engine returns [`Outcome::Partial`] with everything discovered so far
//! plus [`CoverageStats`]. Successor states inserted before the trip stay
//! stored (they are genuinely reachable frontier states), which bounds the
//! budget overshoot to roughly **one successor per worker** instead of one
//! whole expansion's fan-out per worker.
//!
//! The rollback maintains the invariant that `succ[id]` is non-empty only
//! if `expanded[id]`, which is what keeps edge counts exact across
//! interrupt/resume cycles. Because a rolled-back expansion's successors
//! keep no incoming edge, the engine also records an **origin sidecar**
//! (see [`FrontierOptions::record_origins`]): the `(parent, label)` pair
//! of the expansion that first inserted each state, never rolled back, so
//! provenance-hungry callers (the GPO reach tree) stay complete even
//! through aborted expansions.
//!
//! # Panic safety
//!
//! Worker bodies run under `catch_unwind`: a panicking successor callback
//! (or an injected fault, see [`FrontierOptions::inject_fault_after`] and
//! [`FrontierOptions::inject_fault_on_steal`]) surfaces as
//! [`NetError::WorkerPanicked`] after all other workers have been joined —
//! it can neither hang quiescence nor cascade into poisoned-lock panics,
//! because every shared lock is acquired poison-tolerantly (the protected
//! state is only ever mutated by non-panicking operations, so a poisoned
//! guard is still consistent). A worker dying mid-steal may drop the batch
//! it was moving, but the recorded error aborts the whole run before the
//! lost items could be missed.
//!
//! # Determinism contract
//!
//! For a fixed model, the reachable state *set*, the deadlock marking
//! *set*, and the *number* of edges are identical for every thread count;
//! state **ids may permute** between runs because discovery order races.
//! Callers that need reproducible ids use one thread (the engines run
//! their exact historical serial loop in that case).
//!
//! # Genericity
//!
//! The engine is generic over the explored state type (anything
//! implementing [`FrontierState`]) and the edge label type, defaulting to
//! classical [`Marking`]s labelled by [`TransitionId`]s. The generalized
//! partial-order engine instantiates it with GPN states labelled by firing
//! records — same deques, same budget governance, same panic safety.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::budget::{Budget, CoverageStats, ExhaustionReason, Outcome};
use crate::error::NetError;
use crate::ids::TransitionId;
use crate::marking::Marking;

/// Approximate bookkeeping bytes per stored state beyond the marking
/// itself (index entry, result slot, queue slot). Shared with the serial
/// explore loops so byte accounting agrees across thread counts.
pub const STATE_OVERHEAD_BYTES: usize = 48;
/// Approximate bytes per recorded edge.
pub const EDGE_BYTES: usize = 24;
/// Most items moved in one steal (or one injector drain). Half the
/// victim's deque is taken, capped here so a thief never walks off with a
/// huge contiguous share of a deep frontier.
const MAX_STEAL_BATCH: usize = 32;

/// Number of worker threads to use when a caller asks for "all of them":
/// the system's available parallelism, or 1 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A state type the frontier engine can explore: hashable for the sharded
/// index, thread-crossing, and byte-accountable for the memory budget.
pub trait FrontierState: Clone + Eq + Hash + Send + Sync {
    /// Approximate heap bytes of one state, for [`Budget`] accounting.
    fn approx_bytes(&self) -> usize;
}

impl FrontierState for Marking {
    fn approx_bytes(&self) -> usize {
        Marking::approx_bytes(self)
    }
}

/// Acquires a mutex even if a panicking worker poisoned it. Sound here
/// because all critical sections below perform only non-panicking updates
/// (integer arithmetic, `Vec`/`VecDeque`/`HashMap` inserts), so the data
/// behind a poisoned lock is never torn — the poison flag merely records
/// that *some* thread died, which the control block's `error` field tracks
/// explicitly.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs of [`explore_frontier`].
#[derive(Debug, Clone)]
pub struct FrontierOptions {
    /// Worker count; values below 2 are rounded up to 2 (callers run their
    /// serial loop instead of this engine for one thread).
    pub threads: usize,
    /// Collect the labelled `(source, transition, target)` edges.
    pub record_edges: bool,
    /// Record, for every newly discovered state, the `(parent, label)` of
    /// the expansion that first inserted it. Unlike recorded edges, origins
    /// are **not** rolled back when a budget trips mid-expansion, so they
    /// give callers complete discovery provenance even for states whose
    /// incoming edge was rolled back (the GPO engine builds witness traces
    /// from them).
    pub record_origins: bool,
    /// Resource budget checked cooperatively before every dequeue and
    /// every successor insertion; exhausting it yields [`Outcome::Partial`]
    /// instead of an error.
    pub budget: Budget,
    /// Fault-injection hook for regression-testing the hang-free
    /// guarantee: the worker that acquires the `n`-th item (own pop,
    /// injector drain, or steal) panics instead of expanding it. Compiled
    /// only for tests and the `fault-injection` feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub inject_fault_after: Option<usize>,
    /// Fault-injection hook aimed at the stealing path: the worker
    /// performing the `n`-th successful steal panics *after* removing the
    /// batch from the victim and before re-homing it — the worst spot,
    /// since the items die with the thief. The recorded error must still
    /// drain every other worker. Compiled only for tests and the
    /// `fault-injection` feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub inject_fault_on_steal: Option<usize>,
    /// Test hook: start the id allocator at this value instead of the seed
    /// size, to force the [`NetError::StateIdOverflow`] branch without
    /// storing four billion states. The exploration **must** hit the
    /// overflow (the dense result table is never built on the error path);
    /// completing a run with a sparse id space would try to allocate a
    /// slot per skipped id. Compiled only for tests and the
    /// `fault-injection` feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub seed_next_id: Option<u32>,
}

impl Default for FrontierOptions {
    fn default() -> Self {
        FrontierOptions {
            threads: default_threads(),
            record_edges: true,
            record_origins: false,
            budget: Budget::default(),
            #[cfg(any(test, feature = "fault-injection"))]
            inject_fault_after: None,
            #[cfg(any(test, feature = "fault-injection"))]
            inject_fault_on_steal: None,
            #[cfg(any(test, feature = "fault-injection"))]
            seed_next_id: None,
        }
    }
}

/// What a parallel exploration produced. Ids are dense `0..states.len()`
/// with the initial marking at id 0. On a partial run every stored state
/// is genuinely reachable, but only expanded states have their successors
/// (and deadlock classification) recorded.
#[derive(Debug)]
pub struct FrontierResult<St = Marking, L = TransitionId> {
    /// Every discovered state, indexed by state id.
    pub states: Vec<St>,
    /// Per state id, whether its successors have been computed. All `true`
    /// on a complete run; on a partial run the `false` entries are the
    /// frontier a resumed exploration must continue from.
    pub expanded: Vec<bool>,
    /// Labelled outgoing edges per state id; empty unless
    /// [`FrontierOptions::record_edges`] was set. Edges are recorded for a
    /// state exactly when it is `expanded` — a budget-aborted expansion
    /// rolls its edges back so a resume re-records them exactly once.
    pub succ: Vec<Vec<(L, u32)>>,
    /// Per state id, the `(parent, label)` of the expansion that first
    /// inserted it — `None` for id 0 and for seeded states (their
    /// provenance belongs to the caller). Empty unless
    /// [`FrontierOptions::record_origins`] was set. Never rolled back.
    pub origin: Vec<Option<(u32, L)>>,
    /// Ids of expanded states with no successors, in increasing id order.
    pub deadlocks: Vec<u32>,
    /// Total number of fired transitions (edges), recorded or not.
    pub edge_count: usize,
}

/// A previously explored prefix of the state space to continue from —
/// typically decoded from a [checkpoint](crate::checkpoint) snapshot. The
/// engine re-seeds its index with every state, re-enqueues exactly the
/// unexpanded ones (in increasing id order), and keeps all accumulated
/// edges, deadlocks, and counts.
#[derive(Debug)]
pub struct FrontierSeed<St = Marking, L = TransitionId> {
    /// Every previously discovered state, indexed by state id.
    pub states: Vec<St>,
    /// Per state id, whether it was already expanded (same length as
    /// `states`).
    pub expanded: Vec<bool>,
    /// Previously recorded edges per state id (same length as `states`;
    /// all empty when the prior run did not record edges).
    pub succ: Vec<Vec<(L, u32)>>,
    /// Previously classified deadlock ids.
    pub deadlocks: Vec<u32>,
    /// Previously fired transition count.
    pub edge_count: usize,
}

impl<St, L> FrontierSeed<St, L> {
    /// The trivial seed of a fresh run: one stored, unexpanded initial
    /// state with id 0.
    pub fn initial(initial: St) -> Self {
        FrontierSeed {
            states: vec![initial],
            expanded: vec![false],
            succ: vec![Vec::new()],
            deadlocks: Vec::new(),
            edge_count: 0,
        }
    }
}

/// Explores the frontier fixed point of `successors` from `initial` using
/// `opts.threads` workers.
///
/// `successors` receives a marking and pushes every `(label, successor)`
/// pair into the scratch vector; pushing nothing marks the state as a
/// deadlock. The callback must be a pure function of the marking — the
/// engine calls it once per distinct reachable marking (twice only when a
/// budget aborts an expansion that a resume later re-runs), from an
/// unspecified thread.
///
/// Returns [`Outcome::Complete`] when the state space was exhausted and
/// [`Outcome::Partial`] when `opts.budget` ran out first.
///
/// # Errors
///
/// Propagates the first callback error, or [`NetError::WorkerPanicked`]
/// if a worker thread panicked (all other workers are joined first).
pub fn explore_frontier<St, L, S>(
    initial: St,
    opts: &FrontierOptions,
    successors: S,
) -> Result<Outcome<FrontierResult<St, L>>, NetError>
where
    St: FrontierState,
    L: Clone + Send,
    S: Fn(&St, &mut Vec<(L, St)>) -> Result<(), NetError> + Sync,
{
    explore_frontier_seeded(FrontierSeed::initial(initial), opts, successors)
}

/// Continues exploring from a previously computed prefix (see
/// [`FrontierSeed`]). A seed of [`FrontierSeed::initial`] makes this
/// identical to [`explore_frontier`]; a seed decoded from a checkpoint
/// resumes the interrupted run, re-enqueuing its frontier in increasing
/// id order through the global injector.
///
/// Prior states keep their ids; newly discovered states get the next
/// dense ids. All counts (stored states, byte estimate, expanded states,
/// edges) continue from the seed's totals, so a resumed run trips the
/// same budget limits an uninterrupted run would.
///
/// # Errors
///
/// Propagates the first callback error, or [`NetError::WorkerPanicked`]
/// if a worker thread panicked (all other workers are joined first).
///
/// # Panics
///
/// Panics if the seed is internally inconsistent (field lengths disagree
/// or it contains duplicate states) — seeds decoded from checkpoints are
/// validated before they reach this engine.
pub fn explore_frontier_seeded<St, L, S>(
    seed: FrontierSeed<St, L>,
    opts: &FrontierOptions,
    successors: S,
) -> Result<Outcome<FrontierResult<St, L>>, NetError>
where
    St: FrontierState,
    L: Clone + Send,
    S: Fn(&St, &mut Vec<(L, St)>) -> Result<(), NetError> + Sync,
{
    let start = Instant::now();
    let threads = opts.threads.max(2);
    let shard_count = (threads * 8).next_power_of_two();

    let FrontierSeed {
        states: seed_states,
        expanded: seed_expanded,
        succ: seed_succ,
        deadlocks: seed_deadlocks,
        edge_count: seed_edge_count,
    } = seed;
    assert_eq!(seed_states.len(), seed_expanded.len(), "inconsistent seed");
    assert_eq!(seed_states.len(), seed_succ.len(), "inconsistent seed");

    let prior_count = seed_states.len();
    let prior_expanded = seed_expanded.iter().filter(|&&e| e).count();
    let recorded_edges: usize = seed_succ.iter().map(Vec::len).sum();
    let seed_bytes: usize = seed_states
        .iter()
        .map(|s| s.approx_bytes() + STATE_OVERHEAD_BYTES)
        .sum::<usize>()
        + recorded_edges * EDGE_BYTES;

    let shards: Vec<Mutex<HashMap<St, u32>>> = (0..shard_count)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    let mut injector: VecDeque<(u32, St)> = VecDeque::new();
    for (id, state) in seed_states.into_iter().enumerate() {
        if !seed_expanded[id] {
            injector.push_back((id as u32, state.clone()));
        }
        let prev =
            lock_ignore_poison(&shards[shard_of(&state, shard_count - 1)]).insert(state, id as u32);
        assert!(prev.is_none(), "duplicate state in seed");
    }
    let pending = injector.len();

    #[cfg(any(test, feature = "fault-injection"))]
    let first_id = opts
        .seed_next_id
        .unwrap_or(prior_count as u32)
        .max(prior_count as u32);
    #[cfg(not(any(test, feature = "fault-injection")))]
    let first_id = prior_count as u32;

    let shared = Shared {
        successors: &successors,
        shards,
        shard_mask: shard_count - 1,
        next_id: AtomicU32::new(first_id),
        stored: AtomicUsize::new(prior_count),
        bytes: AtomicUsize::new(seed_bytes),
        expanded: AtomicUsize::new(prior_expanded),
        in_flight: AtomicUsize::new(0),
        pending: AtomicUsize::new(pending),
        budget: &opts.budget,
        record_edges: opts.record_edges,
        record_origins: opts.record_origins,
        injector: Mutex::new(injector),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        halt: AtomicBool::new(false),
        sleepers: AtomicUsize::new(0),
        control: Mutex::new(Control {
            error: None,
            exhausted: None,
        }),
        cv: Condvar::new(),
        #[cfg(any(test, feature = "fault-injection"))]
        fault_after: opts.inject_fault_after,
        #[cfg(any(test, feature = "fault-injection"))]
        fault_on_steal: opts.inject_fault_on_steal,
        #[cfg(any(test, feature = "fault-injection"))]
        acquired: AtomicUsize::new(0),
        #[cfg(any(test, feature = "fault-injection"))]
        steals: AtomicUsize::new(0),
    };

    let shared_ref = &shared;
    let outs: Vec<WorkerOut<L>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|wid| scope.spawn(move || worker(shared_ref, wid)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                // unreachable in practice (worker bodies are wrapped in
                // catch_unwind), but never let a join failure cascade
                Err(_) => {
                    shared_ref.record_error(NetError::WorkerPanicked);
                    WorkerOut::default()
                }
            })
            .collect()
    });

    let control = shared
        .control
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = control.error {
        return Err(e);
    }
    debug_assert_eq!(
        shared.in_flight.load(Ordering::Relaxed),
        0,
        "every acquired item was folded back in"
    );

    // rebuild the dense state table from the sharded index — this also
    // recovers markings that were discovered but never expanded, which is
    // exactly what a budget-limited partial run leaves on the frontier
    let state_count = shared.next_id.load(Ordering::Relaxed) as usize;
    let mut slots: Vec<Option<St>> = (0..state_count).map(|_| None).collect();
    for shard in shared.shards {
        for (m, id) in shard.into_inner().unwrap_or_else(PoisonError::into_inner) {
            slots[id as usize] = Some(m);
        }
    }
    let states: Vec<St> = slots
        .into_iter()
        .map(|s| s.expect("every allocated id has a state in some shard"))
        .collect();
    let mut succ = seed_succ;
    succ.resize_with(state_count, Vec::new);
    let mut origin: Vec<Option<(u32, L)>> = if opts.record_origins {
        (0..state_count).map(|_| None).collect()
    } else {
        Vec::new()
    };
    let mut expanded_flags = seed_expanded;
    expanded_flags.resize(state_count, false);
    let mut deadlocks = seed_deadlocks;
    let mut edge_count = seed_edge_count;
    for out in outs {
        for (src, t, dst) in out.edges {
            succ[src as usize].push((t, dst));
        }
        for (child, parent, t) in out.origins {
            origin[child as usize] = Some((parent, t));
        }
        for sid in out.expanded {
            expanded_flags[sid as usize] = true;
        }
        deadlocks.extend(out.deadlocks);
        edge_count += out.edge_count;
    }
    deadlocks.sort_unstable();
    let result = FrontierResult {
        states,
        expanded: expanded_flags,
        succ,
        origin,
        deadlocks,
        edge_count,
    };
    Ok(match control.exhausted {
        None => Outcome::Complete(result),
        Some(reason) => {
            let expanded = shared.expanded.load(Ordering::Relaxed);
            Outcome::Partial {
                result,
                // re-classify at the stop: a cancel raised while the
                // reason was latched must win deterministically
                reason: shared.budget.stop_reason(reason),
                coverage: CoverageStats {
                    states_stored: state_count,
                    states_expanded: expanded,
                    // every dequeued-but-aborted in-flight item ends the
                    // run unexpanded, so the saturating difference counts
                    // the whole frontier (expanded ≤ stored always holds;
                    // saturate anyway so a miscount can never wrap)
                    frontier_len: state_count.saturating_sub(expanded),
                    bytes_estimate: shared.bytes.load(Ordering::Relaxed),
                    elapsed: start.elapsed(),
                },
            }
        }
    })
}

/// Error/exhaustion state shared by all workers, guarded by the control
/// mutex that also backs the idle condvar.
struct Control {
    error: Option<NetError>,
    /// First budget axis found exhausted; set once, drains all workers.
    exhausted: Option<ExhaustionReason>,
}

struct Shared<'a, St, S> {
    successors: &'a S,
    shards: Vec<Mutex<HashMap<St, u32>>>,
    shard_mask: usize,
    next_id: AtomicU32,
    stored: AtomicUsize,
    bytes: AtomicUsize,
    expanded: AtomicUsize,
    /// Items currently dequeued and being expanded; zero after every join.
    in_flight: AtomicUsize,
    /// States enqueued or currently being expanded; zero means complete.
    /// Incremented *before* an item becomes visible in any deque, so it
    /// can never transiently read zero while work remains.
    pending: AtomicUsize,
    budget: &'a Budget,
    record_edges: bool,
    record_origins: bool,
    /// Seed/resume frontier in increasing id order; drained before steals.
    injector: Mutex<VecDeque<(u32, St)>>,
    /// Per-worker deques: the owner pushes and pops at the back, thieves
    /// steal batches from the front.
    locals: Vec<Mutex<VecDeque<(u32, St)>>>,
    /// Raised with the first error or exhaustion; workers drain on sight.
    halt: AtomicBool,
    /// Workers currently waiting on the condvar (updated under `control`;
    /// read lock-free by producers deciding whether to notify).
    sleepers: AtomicUsize,
    control: Mutex<Control>,
    cv: Condvar,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_after: Option<usize>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_on_steal: Option<usize>,
    #[cfg(any(test, feature = "fault-injection"))]
    acquired: AtomicUsize,
    #[cfg(any(test, feature = "fault-injection"))]
    steals: AtomicUsize,
}

impl<St, S> Shared<'_, St, S> {
    /// Records the first error, halts the run, and wakes every sleeper.
    /// Notifying while holding the control mutex is what makes the idle
    /// protocol race-free (a sleeper is either pre-wait and re-checks, or
    /// in-wait and receives the broadcast).
    fn record_error(&self, e: NetError) {
        let mut c = lock_ignore_poison(&self.control);
        c.error.get_or_insert(e);
        self.halt.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Records the first exhausted budget axis, halts, and wakes sleepers.
    fn record_exhausted(&self, reason: ExhaustionReason) {
        let mut c = lock_ignore_poison(&self.control);
        if c.exhausted.is_none() {
            c.exhausted = Some(reason);
        }
        self.halt.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Wakes sleepers after publishing work or finishing the last item.
    fn notify_under_lock(&self) {
        let _c = lock_ignore_poison(&self.control);
        self.cv.notify_all();
    }
}

struct WorkerOut<L> {
    edges: Vec<(u32, L, u32)>,
    /// `(child, parent, label)` discovery records, kept through aborts.
    origins: Vec<(u32, u32, L)>,
    expanded: Vec<u32>,
    deadlocks: Vec<u32>,
    edge_count: usize,
}

// not derived: `#[derive(Default)]` would needlessly require `L: Default`
impl<L> Default for WorkerOut<L> {
    fn default() -> Self {
        WorkerOut {
            edges: Vec::new(),
            origins: Vec::new(),
            expanded: Vec::new(),
            deadlocks: Vec::new(),
            edge_count: 0,
        }
    }
}

fn shard_of<St: Hash>(m: &St, mask: usize) -> usize {
    let mut h = DefaultHasher::new();
    m.hash(&mut h);
    (h.finish() as usize) & mask
}

/// Allocates the next dense state id without ever wrapping: `u32::MAX` is
/// reserved as the overflow sentinel, and the CAS loop (unlike a blind
/// `fetch_add`) guarantees two racing allocators near the boundary cannot
/// wrap the counter and hand out id 0 twice.
fn alloc_id(next_id: &AtomicU32) -> Option<u32> {
    let mut cur = next_id.load(Ordering::Relaxed);
    loop {
        if cur == u32::MAX {
            return None;
        }
        match next_id.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(cur),
            Err(seen) => cur = seen,
        }
    }
}

/// Tiny xorshift64 generator for randomized victim selection — no external
/// RNG dependency, deterministic per worker index, never zero.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x % bound.max(1) as u64) as usize
    }
}

/// Panic-isolating wrapper: any panic escaping the worker body is recorded
/// as [`NetError::WorkerPanicked`] and broadcast so the remaining workers
/// drain instead of waiting forever on the condvar.
fn worker<St, L, S>(shared: &Shared<'_, St, S>, wid: usize) -> WorkerOut<L>
where
    St: FrontierState,
    L: Clone + Send,
    S: Fn(&St, &mut Vec<(L, St)>) -> Result<(), NetError> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| worker_inner(shared, wid))) {
        Ok(out) => out,
        Err(_) => {
            shared.record_error(NetError::WorkerPanicked);
            WorkerOut::default()
        }
    }
}

/// Takes the next work item: own deque (back), then the injector, then a
/// batch stolen from the front of another worker's deque, victims tried in
/// randomized order. Batches beyond the returned item are re-homed into
/// the caller's own deque — never while holding the victim's lock, so two
/// thieves can never deadlock on each other's deques.
fn acquire<St, S>(shared: &Shared<'_, St, S>, wid: usize, rng: &mut XorShift) -> Option<(u32, St)> {
    if let Some(item) = lock_ignore_poison(&shared.locals[wid]).pop_back() {
        return Some(item);
    }

    {
        let mut inj = lock_ignore_poison(&shared.injector);
        if !inj.is_empty() {
            // drain a proportional batch so a wide resume frontier spreads
            // across workers instead of serializing on the injector lock
            let take = (inj.len() / shared.locals.len()).clamp(1, MAX_STEAL_BATCH);
            let batch: Vec<(u32, St)> = inj.drain(..take).collect();
            drop(inj);
            return Some(rehome(shared, wid, batch));
        }
    }

    let victims = shared.locals.len();
    let start = rng.next_usize(victims);
    for i in 0..victims {
        let v = (start + i) % victims;
        if v == wid {
            continue;
        }
        let batch: Vec<(u32, St)> = {
            let mut d = lock_ignore_poison(&shared.locals[v]);
            if d.is_empty() {
                continue;
            }
            let take = d.len().div_ceil(2).min(MAX_STEAL_BATCH);
            d.drain(..take).collect()
        };

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(n) = shared.fault_on_steal {
            if shared.steals.fetch_add(1, Ordering::Relaxed) + 1 == n {
                // die at the worst spot: the batch is out of the victim
                // but not yet re-homed, so it drops with this worker
                panic!("injected fault on steal #{n}");
            }
        }

        return Some(rehome(shared, wid, batch));
    }
    None
}

/// Keeps the first item of a freshly taken batch and parks the rest in the
/// caller's own deque.
fn rehome<St, S>(shared: &Shared<'_, St, S>, wid: usize, batch: Vec<(u32, St)>) -> (u32, St) {
    let mut it = batch.into_iter();
    let first = it.next().expect("batches are never empty");
    let mut rest = it.peekable();
    if rest.peek().is_some() {
        lock_ignore_poison(&shared.locals[wid]).extend(rest);
    }
    first
}

/// How an in-progress expansion was cut short.
enum Abort {
    /// A budget axis tripped between successor insertions.
    Exhausted(ExhaustionReason),
    /// The dense id space ran out ([`NetError::StateIdOverflow`]).
    Overflow,
}

fn worker_inner<St, L, S>(shared: &Shared<'_, St, S>, wid: usize) -> WorkerOut<L>
where
    St: FrontierState,
    L: Clone + Send,
    S: Fn(&St, &mut Vec<(L, St)>) -> Result<(), NetError> + Sync,
{
    let mut out = WorkerOut::default();
    let mut succs: Vec<(L, St)> = Vec::new();
    let mut newly: Vec<(u32, St)> = Vec::new();
    let mut rng = XorShift::new(wid as u64 + 1);
    loop {
        if shared.halt.load(Ordering::Acquire) {
            return out;
        }
        if let Some(reason) = shared.budget.exceeded(
            shared.stored.load(Ordering::Relaxed),
            shared.bytes.load(Ordering::Relaxed),
        ) {
            shared.record_exhausted(reason);
            return out;
        }

        let Some((sid, state)) = acquire(shared, wid, &mut rng) else {
            // idle protocol: register as a sleeper under the control lock,
            // wait, and re-scan on wake. Every notification happens while
            // holding this lock, so between our failed scan and the wait
            // no wake-up can slip by unobserved — and a push we raced with
            // is still consumed by its producer's own deque loop.
            let c = lock_ignore_poison(&shared.control);
            if c.error.is_some() || c.exhausted.is_some() {
                return out;
            }
            if shared.pending.load(Ordering::Acquire) == 0 {
                shared.cv.notify_all();
                return out;
            }
            shared.sleepers.fetch_add(1, Ordering::Relaxed);
            let c = shared.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
            shared.sleepers.fetch_sub(1, Ordering::Relaxed);
            drop(c);
            continue;
        };

        shared.in_flight.fetch_add(1, Ordering::Relaxed);

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(n) = shared.fault_after {
            if shared.acquired.fetch_add(1, Ordering::Relaxed) + 1 == n {
                panic!("injected fault after {n} acquisitions");
            }
        }

        succs.clear();
        if let Err(e) = (shared.successors)(&state, &mut succs) {
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            shared.pending.fetch_sub(1, Ordering::AcqRel);
            shared.record_error(e);
            return out;
        }

        let edges_mark = out.edges.len();
        let count_mark = out.edge_count;
        let mut aborted: Option<Abort> = None;
        for (t, next) in succs.drain(..) {
            // re-check between insertions: one huge fan-out must not blow
            // past the budget by more than a single successor per worker
            if let Some(reason) = shared.budget.exceeded(
                shared.stored.load(Ordering::Relaxed),
                shared.bytes.load(Ordering::Relaxed),
            ) {
                aborted = Some(Abort::Exhausted(reason));
                break;
            }
            let shard = &shared.shards[shard_of(&next, shared.shard_mask)];
            let nid = match lock_ignore_poison(shard).entry(next) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let Some(nid) = alloc_id(&shared.next_id) else {
                        aborted = Some(Abort::Overflow);
                        break;
                    };
                    shared.stored.fetch_add(1, Ordering::Relaxed);
                    shared.bytes.fetch_add(
                        e.key().approx_bytes() + STATE_OVERHEAD_BYTES,
                        Ordering::Relaxed,
                    );
                    if shared.record_origins {
                        out.origins.push((nid, sid, t.clone()));
                    }
                    newly.push((nid, e.key().clone()));
                    e.insert(nid);
                    nid
                }
            };
            out.edge_count += 1;
            if shared.record_edges {
                shared.bytes.fetch_add(EDGE_BYTES, Ordering::Relaxed);
                out.edges.push((sid, t, nid));
            }
        }

        if let Some(abort) = aborted {
            // roll the expansion back so `sid` stays cleanly unexpanded: a
            // resume re-expands it and re-records its edges exactly once.
            // Successor states already inserted stay — they are genuinely
            // reachable frontier states whose provenance lives in the
            // origin sidecar, not in a (rolled-back) edge.
            let rolled = out.edges.len() - edges_mark;
            if rolled > 0 {
                shared
                    .bytes
                    .fetch_sub(rolled * EDGE_BYTES, Ordering::Relaxed);
                out.edges.truncate(edges_mark);
            }
            out.edge_count = count_mark;
            newly.clear();
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            shared.pending.fetch_sub(1, Ordering::AcqRel);
            match abort {
                Abort::Exhausted(reason) => shared.record_exhausted(reason),
                Abort::Overflow => shared.record_error(NetError::StateIdOverflow),
            }
            return out;
        }

        if out.edge_count == count_mark {
            out.deadlocks.push(sid);
        }
        shared.expanded.fetch_add(1, Ordering::Relaxed);
        out.expanded.push(sid);

        // fold back in: make new work visible (incrementing `pending`
        // FIRST so it cannot transiently hit zero), then retire this item
        let grew = !newly.is_empty();
        if grew {
            shared.pending.fetch_add(newly.len(), Ordering::AcqRel);
            lock_ignore_poison(&shared.locals[wid]).extend(newly.drain(..));
        }
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        let remaining = shared.pending.fetch_sub(1, Ordering::AcqRel) - 1;
        if remaining == 0 {
            shared.notify_under_lock();
            return out;
        }
        if grew && shared.sleepers.load(Ordering::Relaxed) > 0 {
            shared.notify_under_lock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, PetriNet};
    use std::time::Duration;

    fn concurrent(n: usize) -> PetriNet {
        let mut b = NetBuilder::new("concurrent");
        for i in 0..n {
            let p = b.place_marked(format!("in{i}"));
            let q = b.place(format!("out{i}"));
            b.transition(format!("t{i}"), [p], [q]);
        }
        b.build().unwrap()
    }

    /// Deep chain whose every link also fans out into `width` dead ends —
    /// the classic steal-heavy shape: the chain owner keeps producing one
    /// deep item plus `width` leaves, so thieves always find work.
    fn comb(depth: usize, width: usize) -> PetriNet {
        let mut b = NetBuilder::new("comb");
        let mut cur = b.place_marked("c0");
        for i in 0..depth {
            let next = b.place(format!("c{}", i + 1));
            b.transition(format!("t{i}"), [cur], [next]);
            for j in 0..width {
                let d = b.place(format!("d{i}_{j}"));
                b.transition(format!("u{i}_{j}"), [cur], [d]);
            }
            cur = next;
        }
        b.build().unwrap()
    }

    /// One marked hub firing into `n` distinct leaves: a single expansion
    /// with fan-out `n`, for pinning the budget-overshoot bound.
    fn star(n: usize) -> PetriNet {
        let mut b = NetBuilder::new("star");
        let p = b.place_marked("hub");
        for i in 0..n {
            let q = b.place(format!("leaf{i}"));
            b.transition(format!("t{i}"), [p], [q]);
        }
        b.build().unwrap()
    }

    fn net_successors(
        net: &PetriNet,
    ) -> impl Fn(&Marking, &mut Vec<(TransitionId, Marking)>) -> Result<(), NetError> + Sync + '_
    {
        move |m, out| {
            for t in net.transitions() {
                if net.enabled(t, m) {
                    out.push((t, net.fire(t, m)?));
                }
            }
            Ok(())
        }
    }

    fn opts(threads: usize) -> FrontierOptions {
        FrontierOptions {
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn hypercube_explored_completely() {
        let net = concurrent(4);
        for threads in [2, 3, 8] {
            let outcome = explore_frontier(
                net.initial_marking().clone(),
                &opts(threads),
                net_successors(&net),
            )
            .unwrap();
            assert!(outcome.is_complete(), "threads={threads}");
            let r = outcome.into_value();
            assert_eq!(r.states.len(), 16, "threads={threads}");
            assert_eq!(r.edge_count, 32, "threads={threads}");
            assert_eq!(r.deadlocks.len(), 1, "threads={threads}");
            // initial marking keeps id 0; the deadlock is the all-out marking
            assert_eq!(&r.states[0], net.initial_marking());
            assert_eq!(
                r.states[r.deadlocks[0] as usize].token_count(),
                4,
                "all strands finished"
            );
        }
    }

    #[test]
    fn state_set_is_thread_count_invariant() {
        use std::collections::BTreeSet;
        let net = concurrent(5);
        let sets: Vec<BTreeSet<Marking>> = [2usize, 4, 16]
            .iter()
            .map(|&threads| {
                explore_frontier(
                    net.initial_marking().clone(),
                    &opts(threads),
                    net_successors(&net),
                )
                .unwrap()
                .into_value()
                .states
                .into_iter()
                .collect()
            })
            .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
        assert_eq!(sets[0].len(), 32);
    }

    #[test]
    fn steal_heavy_comb_is_thread_count_invariant() {
        use std::collections::BTreeSet;
        // one seed state, a 32-deep chain, 6-wide fan-out per link: the
        // schedule is dominated by thieves nibbling leaves while one
        // worker advances the chain
        let net = comb(32, 6);
        let expected_states = 33 + 32 * 6;
        let expected_edges = 32 * 7;
        let mut reference: Option<(BTreeSet<Marking>, BTreeSet<Marking>)> = None;
        for threads in [2usize, 4, 8] {
            let r = explore_frontier(
                net.initial_marking().clone(),
                &opts(threads),
                net_successors(&net),
            )
            .unwrap()
            .into_value();
            assert_eq!(r.states.len(), expected_states, "threads={threads}");
            assert_eq!(r.edge_count, expected_edges, "threads={threads}");
            assert_eq!(r.deadlocks.len(), 32 * 6 + 1, "threads={threads}");
            let states: BTreeSet<Marking> = r.states.iter().cloned().collect();
            let deads: BTreeSet<Marking> = r
                .deadlocks
                .iter()
                .map(|&d| r.states[d as usize].clone())
                .collect();
            match &reference {
                None => reference = Some((states, deads)),
                Some((s, d)) => {
                    assert_eq!(&states, s, "threads={threads}");
                    assert_eq!(&deads, d, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn state_budget_yields_partial_not_error() {
        let net = concurrent(6);
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 4,
                record_edges: false,
                budget: Budget::default().cap_states(10),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::States));
        let coverage = outcome.coverage().unwrap().clone();
        let r = outcome.into_value();
        assert!(r.states.len() > 10, "limit was actually hit");
        // the per-successor re-check caps the overshoot at one successor
        // per worker, much tighter than one expansion's fan-out per worker
        assert!(r.states.len() <= 10 + 4, "bounded overshoot");
        assert_eq!(coverage.states_stored, r.states.len());
        assert_eq!(
            coverage.frontier_len,
            coverage.states_stored - coverage.states_expanded
        );
        assert!(coverage.frontier_len > 0, "something left unexplored");
        // every stored marking is genuinely reachable
        let full = explore_frontier(
            net.initial_marking().clone(),
            &opts(2),
            net_successors(&net),
        )
        .unwrap()
        .into_value();
        for m in &r.states {
            assert!(full.states.contains(m), "partial ⊆ full");
        }
    }

    #[test]
    fn wide_fanout_overshoot_is_one_successor_per_worker() {
        // regression for the unbounded-overshoot bug: the budget used to
        // be consulted only before dequeue, so this single expansion with
        // fan-out 256 blew past max_states/max_bytes by the whole fan-out
        let net = star(256);
        let threads = 4;
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads,
                budget: Budget::default().cap_states(4),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::States));
        let coverage = outcome.coverage().unwrap().clone();
        let r = outcome.into_value();
        assert!(r.states.len() > 4, "limit was actually hit");
        assert!(
            r.states.len() <= 4 + threads,
            "stored {} states: overshoot must be ≤ one successor per worker",
            r.states.len()
        );
        assert_eq!(
            coverage.states_expanded + coverage.frontier_len,
            coverage.states_stored
        );

        // same bound on the bytes axis, in units of the largest successor
        let full = explore_frontier(
            net.initial_marking().clone(),
            &opts(2),
            net_successors(&net),
        )
        .unwrap()
        .into_value();
        let max_footprint = full
            .states
            .iter()
            .map(|m| m.approx_bytes() + STATE_OVERHEAD_BYTES)
            .max()
            .unwrap();
        let cap = 700;
        // record_edges off so the estimate is monotone (see
        // byte_budget_yields_partial) and the bound is purely per-state
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads,
                record_edges: false,
                budget: Budget::default().cap_bytes(cap),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::Memory));
        let coverage = outcome.coverage().unwrap();
        assert!(coverage.bytes_estimate > cap, "limit was actually hit");
        assert!(
            coverage.bytes_estimate <= cap + threads * max_footprint,
            "estimate {} bytes: overshoot must be ≤ one successor per worker",
            coverage.bytes_estimate
        );
    }

    #[test]
    fn aborted_expansions_leave_unexpanded_states_edgeless() {
        // the rollback invariant that keeps resume edge counts exact:
        // succ[id] is non-empty only if expanded[id]
        let net = concurrent(6);
        for threads in [2, 4, 8] {
            let outcome = explore_frontier(
                net.initial_marking().clone(),
                &FrontierOptions {
                    threads,
                    budget: Budget::default().cap_states(10),
                    ..Default::default()
                },
                net_successors(&net),
            )
            .unwrap();
            let coverage = outcome.coverage().unwrap().clone();
            let r = outcome.into_value();
            for (id, &e) in r.expanded.iter().enumerate() {
                if !e {
                    assert!(
                        r.succ[id].is_empty(),
                        "threads={threads}: unexpanded state {id} kept edges"
                    );
                }
            }
            let recorded: usize = r.succ.iter().map(Vec::len).sum();
            assert_eq!(recorded, r.edge_count, "threads={threads}");
            assert_eq!(
                coverage.states_expanded + coverage.frontier_len,
                coverage.states_stored,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn origins_give_complete_discovery_provenance() {
        let net = concurrent(4);
        let r = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 4,
                record_origins: true,
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap()
        .into_value();
        assert_eq!(r.origin.len(), r.states.len());
        assert!(r.origin[0].is_none(), "the seed has no origin");
        for (id, o) in r.origin.iter().enumerate().skip(1) {
            let (parent, t) = o.expect("every discovered state has an origin");
            assert_eq!(
                net.fire(t, &r.states[parent as usize]).unwrap(),
                r.states[id],
                "origin edge replays"
            );
        }
    }

    #[test]
    fn origins_survive_budget_aborted_expansions() {
        // states inserted by an expansion that later hit the budget keep
        // their origin even though the rolled-back edge is gone — this is
        // what lets the GPO engine build witness traces on partial runs
        let net = concurrent(6);
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 4,
                record_origins: true,
                budget: Budget::default().cap_states(10),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert!(!outcome.is_complete());
        let r = outcome.into_value();
        let mut has_incoming = vec![false; r.states.len()];
        for edges in &r.succ {
            for &(_, dst) in edges {
                has_incoming[dst as usize] = true;
            }
        }
        let mut orphans = 0;
        for (id, edged) in has_incoming.iter().enumerate().skip(1) {
            let (parent, t) = r.origin[id].expect("origin recorded for every discovery");
            assert_eq!(
                net.fire(t, &r.states[parent as usize]).unwrap(),
                r.states[id]
            );
            if !edged {
                orphans += 1;
            }
        }
        // not asserted > 0: whether an edgeless discovery exists depends
        // on which worker tripped the budget first
        let _ = orphans;
    }

    #[test]
    fn expired_deadline_yields_partial() {
        let net = concurrent(5);
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 2,
                budget: Budget::default().with_timeout(Duration::ZERO),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::Time));
        assert!(!outcome.value().states.is_empty(), "initial state kept");
    }

    #[test]
    fn cancellation_yields_partial() {
        let net = concurrent(5);
        let budget = Budget::default();
        budget.cancel();
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 2,
                budget,
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn byte_budget_yields_partial() {
        let net = concurrent(8);
        // record_edges off so the estimate is monotone: rolled-back edge
        // bytes could otherwise dip the final figure back under the cap
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 2,
                record_edges: false,
                budget: Budget::default().cap_bytes(600),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::Memory));
        let coverage = outcome.coverage().unwrap();
        assert!(coverage.bytes_estimate > 600);
    }

    #[test]
    fn callback_error_propagates() {
        let net = concurrent(3);
        let err = explore_frontier(
            net.initial_marking().clone(),
            &opts(2),
            |_m: &Marking, _out: &mut Vec<(TransitionId, Marking)>| Err(NetError::StateLimit(777)),
        )
        .unwrap_err();
        assert_eq!(err, NetError::StateLimit(777));
        let _ = net;
    }

    #[test]
    fn recorded_edges_form_the_reachability_graph() {
        let net = concurrent(3);
        let r = explore_frontier(
            net.initial_marking().clone(),
            &opts(4),
            net_successors(&net),
        )
        .unwrap()
        .into_value();
        // every recorded edge replays: fire(t, states[src]) == states[dst]
        let mut total = 0;
        for (src, edges) in r.succ.iter().enumerate() {
            for &(t, dst) in edges {
                let fired = net.fire(t, &r.states[src]).unwrap();
                assert_eq!(fired, r.states[dst as usize]);
                total += 1;
            }
        }
        assert_eq!(total, r.edge_count);
    }

    #[test]
    fn injected_worker_panic_surfaces_without_hanging() {
        // the regression test for the hang-free guarantee: a worker dying
        // mid-exploration must neither stall quiescence detection nor
        // cascade into poisoned-lock panics on the other workers
        let net = concurrent(8);
        for threads in [2, 8] {
            let start = Instant::now();
            let err = explore_frontier(
                net.initial_marking().clone(),
                &FrontierOptions {
                    threads,
                    inject_fault_after: Some(5),
                    ..Default::default()
                },
                net_successors(&net),
            )
            .unwrap_err();
            assert_eq!(err, NetError::WorkerPanicked, "threads={threads}");
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "threads={threads}: join took {:?}",
                start.elapsed()
            );
        }
    }

    #[test]
    fn panic_on_first_dequeue_still_joins() {
        let net = concurrent(4);
        let err = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 4,
                inject_fault_after: Some(1),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap_err();
        assert_eq!(err, NetError::WorkerPanicked);
    }

    #[test]
    fn injected_mid_steal_panic_surfaces_without_hanging() {
        // a thief dying *after* removing a batch from its victim and
        // before re-homing it drops those items on the floor — the
        // recorded error must still drain every other worker instead of
        // leaving them waiting on the lost items' pending counts
        let net = concurrent(8);
        let start = Instant::now();
        let err = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 4,
                inject_fault_on_steal: Some(1),
                ..Default::default()
            },
            |m: &Marking, out: &mut Vec<(TransitionId, Marking)>| {
                // linger so expanded items sit in the owner's deque long
                // enough that a thief is guaranteed to find them
                std::thread::sleep(Duration::from_millis(5));
                for t in net.transitions() {
                    if net.enabled(t, m) {
                        out.push((t, net.fire(t, m)?));
                    }
                }
                Ok(())
            },
        )
        .unwrap_err();
        assert_eq!(err, NetError::WorkerPanicked);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "join took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn panicking_successor_callback_is_contained() {
        // a panic inside the *callback* (not just the injected hook) must
        // also surface as WorkerPanicked rather than poisoning the run
        let net = concurrent(4);
        let calls = AtomicUsize::new(0);
        let err = explore_frontier(
            net.initial_marking().clone(),
            &opts(3),
            |m: &Marking, out: &mut Vec<(TransitionId, Marking)>| {
                if calls.fetch_add(1, Ordering::Relaxed) == 3 {
                    panic!("callback exploded");
                }
                for t in net.transitions() {
                    if net.enabled(t, m) {
                        out.push((t, net.fire(t, m)?));
                    }
                }
                Ok(())
            },
        )
        .unwrap_err();
        assert_eq!(err, NetError::WorkerPanicked);
    }

    #[test]
    fn id_overflow_surfaces_as_error_without_inconsistency() {
        // regression for the overflow short-circuit: the old fetch_add +
        // fetch_sub undo could wrap the allocator to 0 under a race and
        // hand out a colliding id; the CAS allocator never wraps, and the
        // whole run fails closed with StateIdOverflow — there is no
        // partial result a resume could observe
        let net = concurrent(4); // needs 15 fresh ids, only 2 remain
        for threads in [2, 8] {
            let start = Instant::now();
            let err = explore_frontier(
                net.initial_marking().clone(),
                &FrontierOptions {
                    threads,
                    seed_next_id: Some(u32::MAX - 2),
                    ..Default::default()
                },
                net_successors(&net),
            )
            .unwrap_err();
            assert_eq!(err, NetError::StateIdOverflow, "threads={threads}");
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "threads={threads}: join took {:?}",
                start.elapsed()
            );
        }
    }

    #[test]
    fn seeded_resume_matches_uninterrupted_run() {
        use std::collections::BTreeSet;
        let net = concurrent(6);
        let reference = explore_frontier(
            net.initial_marking().clone(),
            &opts(2),
            net_successors(&net),
        )
        .unwrap()
        .into_value();

        // interrupt a run early, then resume it from its own result
        let partial = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 2,
                budget: Budget::default().cap_states(10),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert!(!partial.is_complete());
        let p = partial.into_value();
        assert!(p.expanded.iter().any(|&e| !e), "a frontier remains");
        let seed = FrontierSeed {
            states: p.states,
            expanded: p.expanded,
            succ: p.succ,
            deadlocks: p.deadlocks,
            edge_count: p.edge_count,
        };
        let resumed = explore_frontier_seeded(seed, &opts(2), net_successors(&net))
            .unwrap()
            .into_value();

        assert_eq!(resumed.states.len(), reference.states.len());
        assert_eq!(resumed.edge_count, reference.edge_count);
        assert!(resumed.expanded.iter().all(|&e| e), "nothing left over");
        let ref_states: BTreeSet<&Marking> = reference.states.iter().collect();
        let res_states: BTreeSet<&Marking> = resumed.states.iter().collect();
        assert_eq!(ref_states, res_states);
        let ref_dead: BTreeSet<&Marking> = reference
            .deadlocks
            .iter()
            .map(|&d| &reference.states[d as usize])
            .collect();
        let res_dead: BTreeSet<&Marking> = resumed
            .deadlocks
            .iter()
            .map(|&d| &resumed.states[d as usize])
            .collect();
        assert_eq!(ref_dead, res_dead);
        // every recorded edge (old and new) still replays correctly
        let mut total = 0;
        for (src, edges) in resumed.succ.iter().enumerate() {
            for &(t, dst) in edges {
                assert_eq!(
                    net.fire(t, &resumed.states[src]).unwrap(),
                    resumed.states[dst as usize]
                );
                total += 1;
            }
        }
        assert_eq!(total, resumed.edge_count);
    }

    #[test]
    fn fully_expanded_seed_returns_immediately_complete() {
        let net = concurrent(3);
        let full = explore_frontier(
            net.initial_marking().clone(),
            &opts(2),
            net_successors(&net),
        )
        .unwrap()
        .into_value();
        let seed = FrontierSeed {
            states: full.states.clone(),
            expanded: full.expanded.clone(),
            succ: full.succ,
            deadlocks: full.deadlocks.clone(),
            edge_count: full.edge_count,
        };
        let again = explore_frontier_seeded(seed, &opts(2), net_successors(&net)).unwrap();
        assert!(again.is_complete());
        let r = again.into_value();
        assert_eq!(r.states, full.states, "ids are preserved exactly");
        assert_eq!(r.deadlocks, full.deadlocks);
        assert_eq!(r.edge_count, full.edge_count);
    }

    #[test]
    fn zero_state_budget_keeps_only_the_initial_marking() {
        let net = concurrent(3);
        let outcome = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads: 2,
                budget: Budget::default().cap_states(0),
                ..Default::default()
            },
            net_successors(&net),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::States));
        let r = outcome.into_value();
        assert_eq!(r.states.len(), 1, "initial marking is always stored");
        assert_eq!(&r.states[0], net.initial_marking());
    }
}
