//! A small textual net format and its parser/printer.
//!
//! The format is line based:
//!
//! ```text
//! # dining philosopher, 1 seat
//! net demo
//! pl think *        # `*` marks the place initially
//! pl fork *
//! pl eat
//! tr take : think fork -> eat
//! tr done : eat -> think fork
//! ```
//!
//! * `net NAME` — optional, names the net (default `unnamed`).
//! * `pl NAME [*]` — declares a place, `*` puts a token in it initially.
//! * `tr NAME : PRE... -> POST...` — declares a transition; both sides may
//!   be empty.
//! * `#` starts a comment; blank lines are ignored.
//!
//! # Examples
//!
//! ```
//! use petri::parse_net;
//!
//! let net = parse_net("pl a *\npl b\ntr t : a -> b\n")?;
//! assert_eq!(net.place_count(), 2);
//! assert_eq!(net.transition_count(), 1);
//! # Ok::<(), petri::NetError>(())
//! ```

use std::collections::HashMap;

use crate::error::NetError;
use crate::ids::PlaceId;
use crate::net::{NetBuilder, PetriNet};

/// Parses the textual format described in the [module docs](self).
///
/// # Errors
///
/// Returns [`NetError::Parse`] with a 1-based line number for syntax errors,
/// [`NetError::UnknownPlace`] for arcs to undeclared places, and the builder
/// errors ([`NetError::DuplicateName`], [`NetError::DuplicateArc`]) for
/// semantic problems.
pub fn parse_net(input: &str) -> Result<PetriNet, NetError> {
    let mut name = String::from("unnamed");
    let mut places: HashMap<String, PlaceId> = HashMap::new();
    struct PendingTr {
        name: String,
        pre: Vec<String>,
        post: Vec<String>,
        line: usize,
    }
    let mut place_decls: Vec<(String, bool)> = Vec::new();
    let mut trs: Vec<PendingTr> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut words = line.split_whitespace();
        match words.next() {
            Some("net") => {
                name = words.next().map(str::to_string).ok_or(NetError::Parse {
                    line: lineno,
                    message: "expected a net name after `net`".into(),
                })?;
            }
            Some("pl") => {
                let pname = words.next().map(str::to_string).ok_or(NetError::Parse {
                    line: lineno,
                    message: "expected a place name after `pl`".into(),
                })?;
                let marked = match words.next() {
                    None => false,
                    Some("*") => true,
                    Some(w) => {
                        return Err(NetError::Parse {
                            line: lineno,
                            message: format!("unexpected token `{w}` (only `*` is allowed)"),
                        })
                    }
                };
                place_decls.push((pname, marked));
            }
            Some("tr") => {
                let tname = words.next().map(str::to_string).ok_or(NetError::Parse {
                    line: lineno,
                    message: "expected a transition name after `tr`".into(),
                })?;
                if words.next() != Some(":") {
                    return Err(NetError::Parse {
                        line: lineno,
                        message: "expected `:` after the transition name".into(),
                    });
                }
                let rest: Vec<&str> = words.collect();
                let arrow = rest
                    .iter()
                    .position(|&w| w == "->")
                    .ok_or(NetError::Parse {
                        line: lineno,
                        message: "expected `->` between presets and postsets".into(),
                    })?;
                trs.push(PendingTr {
                    name: tname,
                    pre: rest[..arrow].iter().map(|s| s.to_string()).collect(),
                    post: rest[arrow + 1..].iter().map(|s| s.to_string()).collect(),
                    line: lineno,
                });
            }
            Some(other) => {
                return Err(NetError::Parse {
                    line: lineno,
                    message: format!("unknown directive `{other}` (expected net/pl/tr)"),
                })
            }
            None => unreachable!("blank lines skipped above"),
        }
    }

    let mut builder = NetBuilder::new(name);
    for (pname, marked) in place_decls {
        let id = if marked {
            builder.place_marked(pname.clone())
        } else {
            builder.place(pname.clone())
        };
        places.insert(pname, id);
    }
    for tr in trs {
        let resolve = |names: &[String]| -> Result<Vec<PlaceId>, NetError> {
            names
                .iter()
                .map(|n| {
                    places.get(n).copied().ok_or_else(|| NetError::Parse {
                        line: tr.line,
                        message: format!("unknown place `{n}`"),
                    })
                })
                .collect()
        };
        let pre = resolve(&tr.pre)?;
        let post = resolve(&tr.post)?;
        builder.transition(tr.name, pre, post);
    }
    builder.build()
}

/// Renders a net back into the textual format accepted by [`parse_net`].
///
/// `parse_net(&to_text(&net))` reproduces an identical net.
pub fn to_text(net: &PetriNet) -> String {
    let mut out = format!("net {}\n", net.name());
    for p in net.places() {
        if net.initial_marking().is_marked(p) {
            out.push_str(&format!("pl {} *\n", net.place_name(p)));
        } else {
            out.push_str(&format!("pl {}\n", net.place_name(p)));
        }
    }
    for t in net.transitions() {
        let pre: Vec<&str> = net
            .pre_places(t)
            .iter()
            .map(|&p| net.place_name(p))
            .collect();
        let post: Vec<&str> = net
            .post_places(t)
            .iter()
            .map(|&p| net.place_name(p))
            .collect();
        out.push_str(&format!(
            "tr {} : {} -> {}\n",
            net.transition_name(t),
            pre.join(" "),
            post.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a cycle
net cycle
pl p *
pl q
tr go : p -> q
tr back : q -> p
";

    #[test]
    fn parses_sample() {
        let net = parse_net(SAMPLE).unwrap();
        assert_eq!(net.name(), "cycle");
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 2);
        assert!(net
            .initial_marking()
            .is_marked(net.place_by_name("p").unwrap()));
        assert!(!net
            .initial_marking()
            .is_marked(net.place_by_name("q").unwrap()));
    }

    #[test]
    fn round_trip_is_identity() {
        let net = parse_net(SAMPLE).unwrap();
        let text = to_text(&net);
        let net2 = parse_net(&text).unwrap();
        assert_eq!(to_text(&net2), text);
        assert_eq!(net2.place_count(), net.place_count());
        assert_eq!(net2.transition_count(), net.transition_count());
        assert_eq!(net2.initial_marking(), net.initial_marking());
    }

    #[test]
    fn empty_pre_and_post_allowed() {
        let net = parse_net("pl p\ntr src : -> p\ntr sink : p ->\n").unwrap();
        let src = net.transition_by_name("src").unwrap();
        assert!(net.pre_places(src).is_empty());
        assert_eq!(net.post_places(src).len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = parse_net("\n# hi\npl p * # trailing\n\n").unwrap();
        assert_eq!(net.place_count(), 1);
        assert!(net
            .initial_marking()
            .is_marked(net.place_by_name("p").unwrap()));
    }

    #[test]
    fn unknown_place_errors_with_line() {
        let err = parse_net("pl p\ntr t : q -> p\n").unwrap_err();
        assert_eq!(
            err,
            NetError::Parse {
                line: 2,
                message: "unknown place `q`".into()
            }
        );
    }

    #[test]
    fn missing_arrow_errors() {
        let err = parse_net("pl p\ntr t : p p\n").unwrap_err();
        assert!(matches!(err, NetError::Parse { line: 2, .. }));
    }

    #[test]
    fn missing_colon_errors() {
        let err = parse_net("pl p\ntr t p -> p\n").unwrap_err();
        assert!(matches!(err, NetError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_directive_errors() {
        let err = parse_net("bogus x\n").unwrap_err();
        assert!(matches!(err, NetError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_marking_token_errors() {
        let err = parse_net("pl p **\n").unwrap_err();
        assert!(matches!(err, NetError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_place_propagates_builder_error() {
        let err = parse_net("pl p\npl p\n").unwrap_err();
        assert_eq!(err, NetError::DuplicateName("p".into()));
    }
}
