//! A small textual net format and its parser/printer.
//!
//! The format is line based:
//!
//! ```text
//! # dining philosopher, 1 seat
//! net demo
//! pl think *        # `*` marks the place initially
//! pl fork *
//! pl eat
//! tr take : think fork -> eat
//! tr done : eat -> think fork
//! ```
//!
//! * `net NAME` — optional, names the net (default `unnamed`).
//! * `pl NAME [*]` — declares a place, `*` puts a token in it initially.
//! * `tr NAME : PRE... -> POST...` — declares a transition; both sides may
//!   be empty.
//! * `#` starts a comment; blank lines are ignored.
//!
//! # Examples
//!
//! ```
//! use petri::parse_net;
//!
//! let net = parse_net("pl a *\npl b\ntr t : a -> b\n")?;
//! assert_eq!(net.place_count(), 2);
//! assert_eq!(net.transition_count(), 1);
//! # Ok::<(), petri::NetError>(())
//! ```

use std::collections::HashMap;

use crate::error::NetError;
use crate::ids::PlaceId;
use crate::net::{NetBuilder, PetriNet};

/// Splits a (comment-stripped) line into whitespace-separated tokens,
/// pairing each with its 1-based character column in the original line so
/// parse errors can point at the offending token.
fn tokens(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut col = 0usize;
    let mut start: Option<(usize, usize)> = None; // (column, byte offset)
    for (byte, ch) in line.char_indices() {
        col += 1;
        if ch.is_whitespace() {
            if let Some((c, b)) = start.take() {
                out.push((c, &line[b..byte]));
            }
        } else if start.is_none() {
            start = Some((col, byte));
        }
    }
    if let Some((c, b)) = start {
        out.push((c, &line[b..]));
    }
    out
}

/// Parses the textual format described in the [module docs](self).
///
/// # Errors
///
/// Returns [`NetError::Parse`] with a 1-based line number, the 1-based
/// character column of the offending token (or of the position where a
/// missing token was expected), and a message naming the token, for
/// syntax errors and arcs to undeclared places; and the builder errors
/// ([`NetError::DuplicateName`], [`NetError::DuplicateArc`]) for semantic
/// problems.
pub fn parse_net(input: &str) -> Result<PetriNet, NetError> {
    let mut name = String::from("unnamed");
    let mut places: HashMap<String, PlaceId> = HashMap::new();
    struct PendingTr {
        name: String,
        pre: Vec<(usize, String)>,
        post: Vec<(usize, String)>,
        line: usize,
    }
    let mut place_decls: Vec<(String, bool)> = Vec::new();
    let mut trs: Vec<PendingTr> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let toks = tokens(raw.split('#').next().unwrap_or(""));
        let Some(((dcol, directive), rest)) = toks.split_first() else {
            continue;
        };
        let lineno = lineno + 1;
        let err = |column: usize, message: String| -> NetError {
            NetError::Parse {
                line: lineno,
                column,
                message,
            }
        };
        // where a missing trailing token would have started
        let end_col = {
            let &(c, t) = toks.last().expect("line has at least the directive");
            c + t.chars().count()
        };
        let mut words = rest.iter();
        match *directive {
            "net" => {
                name = words
                    .next()
                    .map(|&(_, w)| w.to_string())
                    .ok_or_else(|| err(end_col, "expected a net name after `net`".into()))?;
            }
            "pl" => {
                let pname = words
                    .next()
                    .map(|&(_, w)| w.to_string())
                    .ok_or_else(|| err(end_col, "expected a place name after `pl`".into()))?;
                let marked = match words.next() {
                    None => false,
                    Some(&(_, "*")) => true,
                    Some(&(c, w)) => {
                        return Err(err(
                            c,
                            format!("unexpected token `{w}` (only `*` is allowed)"),
                        ))
                    }
                };
                place_decls.push((pname, marked));
            }
            "tr" => {
                let tname = words
                    .next()
                    .map(|&(_, w)| w.to_string())
                    .ok_or_else(|| err(end_col, "expected a transition name after `tr`".into()))?;
                match words.next() {
                    Some(&(_, ":")) => {}
                    Some(&(c, w)) => {
                        return Err(err(
                            c,
                            format!("expected `:` after the transition name, found `{w}`"),
                        ))
                    }
                    None => {
                        return Err(err(
                            end_col,
                            "expected `:` after the transition name".into(),
                        ))
                    }
                }
                let rest: Vec<(usize, &str)> = words.copied().collect();
                let arrow = rest.iter().position(|&(_, w)| w == "->").ok_or_else(|| {
                    err(end_col, "expected `->` between presets and postsets".into())
                })?;
                let own = |toks: &[(usize, &str)]| -> Vec<(usize, String)> {
                    toks.iter().map(|&(c, w)| (c, w.to_string())).collect()
                };
                trs.push(PendingTr {
                    name: tname,
                    pre: own(&rest[..arrow]),
                    post: own(&rest[arrow + 1..]),
                    line: lineno,
                });
            }
            other => {
                return Err(err(
                    *dcol,
                    format!("unknown directive `{other}` (expected net/pl/tr)"),
                ))
            }
        }
    }

    let mut builder = NetBuilder::new(name);
    for (pname, marked) in place_decls {
        let id = if marked {
            builder.place_marked(pname.clone())
        } else {
            builder.place(pname.clone())
        };
        places.insert(pname, id);
    }
    for tr in trs {
        let resolve = |names: &[(usize, String)]| -> Result<Vec<PlaceId>, NetError> {
            names
                .iter()
                .map(|(col, n)| {
                    places.get(n).copied().ok_or_else(|| NetError::Parse {
                        line: tr.line,
                        column: *col,
                        message: format!("unknown place `{n}`"),
                    })
                })
                .collect()
        };
        let pre = resolve(&tr.pre)?;
        let post = resolve(&tr.post)?;
        builder.transition(tr.name, pre, post);
    }
    builder.build()
}

/// Renders a net back into the textual format accepted by [`parse_net`].
///
/// `parse_net(&to_text(&net))` reproduces an identical net.
pub fn to_text(net: &PetriNet) -> String {
    let mut out = format!("net {}\n", net.name());
    for p in net.places() {
        if net.initial_marking().is_marked(p) {
            out.push_str(&format!("pl {} *\n", net.place_name(p)));
        } else {
            out.push_str(&format!("pl {}\n", net.place_name(p)));
        }
    }
    for t in net.transitions() {
        let pre: Vec<&str> = net
            .pre_places(t)
            .iter()
            .map(|&p| net.place_name(p))
            .collect();
        let post: Vec<&str> = net
            .post_places(t)
            .iter()
            .map(|&p| net.place_name(p))
            .collect();
        out.push_str(&format!(
            "tr {} : {} -> {}\n",
            net.transition_name(t),
            pre.join(" "),
            post.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a cycle
net cycle
pl p *
pl q
tr go : p -> q
tr back : q -> p
";

    #[test]
    fn parses_sample() {
        let net = parse_net(SAMPLE).unwrap();
        assert_eq!(net.name(), "cycle");
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 2);
        assert!(net
            .initial_marking()
            .is_marked(net.place_by_name("p").unwrap()));
        assert!(!net
            .initial_marking()
            .is_marked(net.place_by_name("q").unwrap()));
    }

    #[test]
    fn round_trip_is_identity() {
        let net = parse_net(SAMPLE).unwrap();
        let text = to_text(&net);
        let net2 = parse_net(&text).unwrap();
        assert_eq!(to_text(&net2), text);
        assert_eq!(net2.place_count(), net.place_count());
        assert_eq!(net2.transition_count(), net.transition_count());
        assert_eq!(net2.initial_marking(), net.initial_marking());
    }

    #[test]
    fn empty_pre_and_post_allowed() {
        let net = parse_net("pl p\ntr src : -> p\ntr sink : p ->\n").unwrap();
        let src = net.transition_by_name("src").unwrap();
        assert!(net.pre_places(src).is_empty());
        assert_eq!(net.post_places(src).len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = parse_net("\n# hi\npl p * # trailing\n\n").unwrap();
        assert_eq!(net.place_count(), 1);
        assert!(net
            .initial_marking()
            .is_marked(net.place_by_name("p").unwrap()));
    }

    #[track_caller]
    fn assert_parse_err(input: &str, line: usize, column: usize, message: &str) {
        assert_eq!(
            parse_net(input).unwrap_err(),
            NetError::Parse {
                line,
                column,
                message: message.into()
            },
            "for input {input:?}"
        );
    }

    #[test]
    fn unknown_place_errors_with_line_and_column() {
        assert_parse_err("pl p\ntr t : q -> p\n", 2, 8, "unknown place `q`");
        // a post-set place points at its own column, past the arrow
        assert_parse_err("pl p\ntr t : p -> q\n", 2, 13, "unknown place `q`");
    }

    #[test]
    fn missing_arrow_errors() {
        assert_parse_err(
            "pl p\ntr t : p p\n",
            2,
            11,
            "expected `->` between presets and postsets",
        );
    }

    #[test]
    fn missing_colon_errors() {
        // a wrong token names the token it found
        assert_parse_err(
            "pl p\ntr t p -> p\n",
            2,
            6,
            "expected `:` after the transition name, found `p`",
        );
        // a missing token points just past the end of the line
        assert_parse_err("tr t\n", 1, 5, "expected `:` after the transition name");
    }

    #[test]
    fn missing_name_errors() {
        assert_parse_err("net\n", 1, 4, "expected a net name after `net`");
        assert_parse_err("pl\n", 1, 3, "expected a place name after `pl`");
        assert_parse_err("tr\n", 1, 3, "expected a transition name after `tr`");
    }

    #[test]
    fn unknown_directive_errors() {
        assert_parse_err(
            "  bogus x\n",
            1,
            3,
            "unknown directive `bogus` (expected net/pl/tr)",
        );
    }

    #[test]
    fn bad_marking_token_errors() {
        assert_parse_err(
            "pl p **\n",
            1,
            6,
            "unexpected token `**` (only `*` is allowed)",
        );
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        // `é` is two bytes but one column wide
        assert_parse_err(
            "pl éé **\n",
            1,
            7,
            "unexpected token `**` (only `*` is allowed)",
        );
    }

    #[test]
    fn duplicate_place_propagates_builder_error() {
        let err = parse_net("pl p\npl p\n").unwrap_err();
        assert_eq!(err, NetError::DuplicateName("p".into()));
    }
}
