//! A minimal, std-only reader for the PNML interchange format
//! (ISO/IEC 15909-2), covering the place/transition subset that the
//! Model Checking Contest corpus uses: `pnmlcoremodel` / `ptnet` nets
//! with places, transitions, arcs, `<initialMarking>` values and nested
//! `<page>` elements. Graphics, tool-specific annotations, comments and
//! CDATA sections are skipped.
//!
//! Node *ids* become the place/transition names (ids are the unique,
//! referenceable identifiers in PNML; `<name>` labels are free-form and
//! frequently duplicated across a net). The net's `id` attribute becomes
//! the net name, falling back to `pnml` when absent.
//!
//! Because the engines in this crate operate on 1-safe nets, an
//! `<initialMarking>` of 2 or more or an arc `<inscription>` weight above
//! 1 is rejected with a clear error rather than silently truncated.
//!
//! # Examples
//!
//! ```
//! let net = petri::parse_pnml(r#"
//!   <pnml><net id="toggle"><page>
//!     <place id="on"><initialMarking><text>1</text></initialMarking></place>
//!     <place id="off"/>
//!     <transition id="flip"/>
//!     <arc id="a1" source="on" target="flip"/>
//!     <arc id="a2" source="flip" target="off"/>
//!   </page></net></pnml>"#).unwrap();
//! assert_eq!(net.name(), "toggle");
//! assert_eq!((net.place_count(), net.transition_count()), (2, 1));
//! ```

use crate::error::NetError;
use crate::net::{NetBuilder, PetriNet};

/// Parses a PNML document into a [`PetriNet`].
///
/// # Errors
///
/// Returns [`NetError::Parse`] (with 1-based line/column of the offending
/// construct) on malformed XML, missing ids, arcs between two places or
/// two transitions, unknown arc endpoints, or markings/weights that
/// exceed 1-safety. Duplicate ids surface as [`NetError::DuplicateName`].
pub fn parse_pnml(input: &str) -> Result<PetriNet, NetError> {
    let mut scanner = Scanner::new(input);
    let mut doc = Document::default();
    doc.scan(&mut scanner)?;
    doc.build()
}

/// `true` when `text` looks like a PNML document rather than the native
/// `.net` format: its first markup construct is an XML tag.
pub fn looks_like_pnml(text: &str) -> bool {
    text.trim_start().starts_with('<')
}

#[derive(Debug, Default)]
struct Document {
    net_name: Option<String>,
    /// (id, initially_marked)
    places: Vec<(String, bool)>,
    transitions: Vec<String>,
    /// (source, target, line, column) — resolved after the scan
    arcs: Vec<(String, String, usize, usize)>,
}

impl Document {
    /// Walks the token stream, collecting the first `<net>` element.
    fn scan(&mut self, s: &mut Scanner) -> Result<(), NetError> {
        // the open-element stack, used both for well-formedness and to
        // know what a `<text>` value belongs to
        let mut stack: Vec<String> = Vec::new();
        let mut in_net = false;
        let mut done = false;
        // the node currently being populated
        let mut place: Option<(String, bool)> = None;
        let mut arc: Option<(String, String, usize, usize)> = None;

        while let Some(ev) = s.next_event()? {
            match ev {
                Event::Open {
                    name,
                    attrs,
                    self_closing,
                    line,
                    column,
                } => {
                    // subtrees we never look into
                    if matches!(name.as_str(), "graphics" | "toolspecific") {
                        if !self_closing {
                            s.skip_subtree(&name)?;
                        }
                        continue;
                    }
                    if name == "net" {
                        if done {
                            // only the first <net> of a document is read
                            s.skip_subtree(&name)?;
                            continue;
                        }
                        in_net = true;
                        self.net_name = attr(&attrs, "id").map(str::to_string);
                    }
                    if in_net {
                        match name.as_str() {
                            "place" => {
                                let id = require_id(&attrs, "place", line, column)?;
                                place = Some((id, false));
                            }
                            "transition" => {
                                let id = require_id(&attrs, "transition", line, column)?;
                                self.transitions.push(id);
                            }
                            "arc" => {
                                let src = attr(&attrs, "source").ok_or_else(|| {
                                    missing(line, column, "arc is missing a `source` attribute")
                                })?;
                                let tgt = attr(&attrs, "target").ok_or_else(|| {
                                    missing(line, column, "arc is missing a `target` attribute")
                                })?;
                                arc = Some((src.to_string(), tgt.to_string(), line, column));
                            }
                            _ => {}
                        }
                    }
                    if self_closing {
                        match name.as_str() {
                            "place" => self.places.push(place.take().expect("just set")),
                            "arc" => self.arcs.push(arc.take().expect("just set")),
                            "net" if in_net => {
                                in_net = false;
                                done = true;
                            }
                            _ => {}
                        }
                    } else {
                        stack.push(name);
                    }
                }
                Event::Close { name, line, column } => {
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return Err(missing(
                                line,
                                column,
                                &format!(
                                    "mismatched close tag `</{name}>` (open element is `<{open}>`)"
                                ),
                            ))
                        }
                        None => {
                            return Err(missing(
                                line,
                                column,
                                &format!("close tag `</{name}>` with no open element"),
                            ))
                        }
                    }
                    match name.as_str() {
                        "place" => {
                            if let Some(p) = place.take() {
                                self.places.push(p);
                            }
                        }
                        "arc" => {
                            if let Some(a) = arc.take() {
                                self.arcs.push(a);
                            }
                        }
                        "net" if in_net => {
                            in_net = false;
                            done = true;
                        }
                        _ => {}
                    }
                }
                Event::Text {
                    value,
                    line,
                    column,
                } => {
                    let value = value.trim();
                    if value.is_empty() {
                        continue;
                    }
                    // a <text> value is interpreted by its grandparent:
                    // place > initialMarking > text, arc > inscription > text
                    let parent = stack.iter().rev().nth(1).map(String::as_str);
                    let leaf = stack.last().map(String::as_str);
                    match (parent, leaf) {
                        (Some("initialMarking"), Some("text")) => {
                            let tokens: u64 = value.parse().map_err(|_| {
                                missing(
                                    line,
                                    column,
                                    &format!("initial marking `{value}` is not a number"),
                                )
                            })?;
                            if tokens > 1 {
                                return Err(missing(
                                    line,
                                    column,
                                    &format!("initial marking of {tokens} tokens: this checker handles 1-safe nets only"),
                                ));
                            }
                            if let Some((_, marked)) = place.as_mut() {
                                *marked = tokens == 1;
                            }
                        }
                        (Some("inscription"), Some("text")) => {
                            let weight: u64 = value.parse().unwrap_or(1);
                            if weight > 1 {
                                return Err(missing(
                                    line,
                                    column,
                                    &format!("arc weight {weight}: this checker handles 1-safe (weight-1) nets only"),
                                ));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        if let Some(open) = stack.last() {
            return Err(missing(
                s.line(),
                s.column(),
                &format!("unclosed element `<{open}>` at end of input"),
            ));
        }
        if !done {
            return Err(missing(
                s.line(),
                s.column(),
                "document has no `<net>` element",
            ));
        }
        Ok(())
    }

    fn build(self) -> Result<PetriNet, NetError> {
        let mut b = NetBuilder::new(self.net_name.as_deref().unwrap_or("pnml"));
        let mut place_ids = std::collections::HashMap::new();
        for (name, marked) in &self.places {
            let id = if *marked {
                b.place_marked(name.clone())
            } else {
                b.place(name.clone())
            };
            place_ids.insert(name.clone(), id);
        }
        // arcs are attributes of <arc> elements, so pre/post sets are only
        // known once the whole net is scanned
        let mut pre: Vec<Vec<crate::ids::PlaceId>> = vec![Vec::new(); self.transitions.len()];
        let mut post: Vec<Vec<crate::ids::PlaceId>> = vec![Vec::new(); self.transitions.len()];
        let mut transition_ix = std::collections::HashMap::new();
        for (i, name) in self.transitions.iter().enumerate() {
            transition_ix.insert(name.clone(), i);
        }
        for (src, tgt, line, column) in &self.arcs {
            match (
                place_ids.get(src),
                transition_ix.get(src),
                place_ids.get(tgt),
                transition_ix.get(tgt),
            ) {
                (Some(&p), None, None, Some(&t)) => pre[t].push(p),
                (None, Some(&t), Some(&p), None) => post[t].push(p),
                (None, None, _, _) => {
                    return Err(missing(
                        *line,
                        *column,
                        &format!("arc source `{src}` is not a declared place or transition"),
                    ))
                }
                (_, _, None, None) => {
                    return Err(missing(
                        *line,
                        *column,
                        &format!("arc target `{tgt}` is not a declared place or transition"),
                    ))
                }
                _ => {
                    return Err(missing(
                        *line,
                        *column,
                        &format!("arc `{src}` -> `{tgt}` must connect a place and a transition"),
                    ))
                }
            }
        }
        for ((name, pre), post) in self.transitions.iter().zip(pre).zip(post) {
            b.transition(name.clone(), pre, post);
        }
        b.build()
    }
}

fn attr<'a>(attrs: &'a [(String, String)], name: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn require_id(
    attrs: &[(String, String)],
    what: &str,
    line: usize,
    column: usize,
) -> Result<String, NetError> {
    attr(attrs, "id").map(str::to_string).ok_or_else(|| {
        missing(
            line,
            column,
            &format!("{what} is missing an `id` attribute"),
        )
    })
}

fn missing(line: usize, column: usize, message: &str) -> NetError {
    NetError::Parse {
        line,
        column,
        message: message.to_string(),
    }
}

// ---------------------------------------------------------------------
// XML subset scanner
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Event {
    Open {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
        line: usize,
        column: usize,
    },
    Close {
        name: String,
        line: usize,
        column: usize,
    },
    Text {
        value: String,
        line: usize,
        column: usize,
    },
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
}

impl Scanner {
    fn new(text: &str) -> Self {
        Scanner {
            chars: text.chars().collect(),
            pos: 0,
        }
    }

    fn line(&self) -> usize {
        1 + self.chars[..self.pos.min(self.chars.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count()
    }

    fn column(&self) -> usize {
        let upto = &self.chars[..self.pos.min(self.chars.len())];
        match upto.iter().rposition(|&c| c == '\n') {
            Some(nl) => upto.len() - nl,
            None => upto.len() + 1,
        }
    }

    fn err(&self, message: &str) -> NetError {
        missing(self.line(), self.column(), message)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.chars[self.pos.min(self.chars.len())..]
            .iter()
            .zip(s.chars())
            .filter(|(a, b)| **a == *b)
            .count()
            == s.chars().count()
    }

    fn skip_past(&mut self, terminator: &str) -> Result<(), NetError> {
        while self.pos < self.chars.len() {
            if self.starts_with(terminator) {
                self.pos += terminator.chars().count();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(&format!("unterminated construct (expected `{terminator}`)")))
    }

    /// Produces the next event, or `None` at end of input.
    fn next_event(&mut self) -> Result<Option<Event>, NetError> {
        loop {
            let Some(c) = self.peek() else {
                return Ok(None);
            };
            if c != '<' {
                // text run up to the next tag
                let line = self.line();
                let column = self.column();
                let start = self.pos;
                while self.peek().is_some_and(|c| c != '<') {
                    self.pos += 1;
                }
                let raw: String = self.chars[start..self.pos].iter().collect();
                if raw.trim().is_empty() {
                    continue;
                }
                return Ok(Some(Event::Text {
                    value: decode_entities(&raw),
                    line,
                    column,
                }));
            }
            // a markup construct
            if self.starts_with("<!--") {
                self.skip_past("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.skip_past("]]>")?;
                continue;
            }
            if self.starts_with("<?") || self.starts_with("<!") {
                self.skip_past(">")?;
                continue;
            }
            let line = self.line();
            let column = self.column();
            self.pos += 1; // consume `<`
            let closing = self.peek() == Some('/');
            if closing {
                self.pos += 1;
            }
            let name = self.name()?;
            if closing {
                self.skip_whitespace();
                if self.peek() != Some('>') {
                    return Err(self.err(&format!("malformed close tag `</{name}`")));
                }
                self.pos += 1;
                return Ok(Some(Event::Close { name, line, column }));
            }
            let attrs = self.attributes()?;
            let self_closing = self.peek() == Some('/');
            if self_closing {
                self.pos += 1;
            }
            if self.peek() != Some('>') {
                return Err(self.err(&format!("malformed tag `<{name}` (expected `>`)")));
            }
            self.pos += 1;
            return Ok(Some(Event::Open {
                name,
                attrs,
                self_closing,
                line,
                column,
            }));
        }
    }

    /// Consumes everything up to and including the matching close tag of
    /// an already-open element (used for `<graphics>`/`<toolspecific>`).
    fn skip_subtree(&mut self, name: &str) -> Result<(), NetError> {
        let mut depth = 1usize;
        while depth > 0 {
            match self.next_event()? {
                Some(Event::Open {
                    self_closing: false,
                    ..
                }) => depth += 1,
                Some(Event::Close { .. }) => depth -= 1,
                Some(_) => {}
                None => {
                    return Err(self.err(&format!("unclosed element `<{name}>` at end of input")))
                }
            }
        }
        Ok(())
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn name(&mut self) -> Result<String, NetError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an element name after `<`"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn attributes(&mut self) -> Result<Vec<(String, String)>, NetError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') | Some('/') | None => return Ok(attrs),
                _ => {}
            }
            let key = self.name()?;
            self.skip_whitespace();
            if self.peek() != Some('=') {
                return Err(self.err(&format!("attribute `{key}` is missing `=`")));
            }
            self.pos += 1;
            self.skip_whitespace();
            let quote = match self.peek() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err(&format!("attribute `{key}` value must be quoted"))),
            };
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some_and(|c| c != quote) {
                self.pos += 1;
            }
            if self.peek().is_none() {
                return Err(self.err(&format!("unterminated value for attribute `{key}`")));
            }
            let raw: String = self.chars[start..self.pos].iter().collect();
            self.pos += 1; // closing quote
            attrs.push((key, decode_entities(&raw)));
        }
    }
}

/// Decodes the five predefined XML entities plus decimal/hex char refs.
fn decode_entities(text: &str) -> String {
    if !text.contains('&') {
        return text.to_string();
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let Some(semi) = rest.find(';') else {
            out.push_str(rest);
            return out;
        };
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                    .or_else(|| entity.strip_prefix('#').and_then(|d| d.parse().ok()));
                match code.and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => out.push_str(&rest[..=semi]), // leave unknown entities as-is
                }
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<pnml xmlns="http://www.pnml.org/version-2009/grammar/pnml">
  <net id="toggle" type="http://www.pnml.org/version-2009/grammar/ptnet">
    <name><text>a toggle net</text></name>
    <page id="page0">
      <!-- the single token bounces between on and off -->
      <place id="on">
        <name><text>lamp on</text></name>
        <graphics><position x="10" y="20"/></graphics>
        <initialMarking><text>1</text></initialMarking>
      </place>
      <place id="off"/>
      <transition id="switch_off"/>
      <transition id="switch_on"/>
      <arc id="a1" source="on" target="switch_off"/>
      <arc id="a2" source="switch_off" target="off"/>
      <arc id="a3" source="off" target="switch_on"/>
      <arc id="a4" source="switch_on" target="on"/>
    </page>
  </net>
</pnml>"#;

    #[test]
    fn parses_the_pt_subset() {
        let net = parse_pnml(TOGGLE).unwrap();
        assert_eq!(net.name(), "toggle");
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 2);
        assert_eq!(net.arc_count(), 4);
        let on = net.place_by_name("on").unwrap();
        assert!(net.initial_marking().is_marked(on));
        let off = net.place_by_name("off").unwrap();
        assert!(!net.initial_marking().is_marked(off));
        let t = net.transition_by_name("switch_off").unwrap();
        assert_eq!(net.pre_places(t), &[on]);
        assert_eq!(net.post_places(t), &[off]);
    }

    #[test]
    fn ignores_second_net_and_decodes_entities() {
        let text = r#"<pnml>
          <net id="first &amp; only">
            <place id="p&lt;1&gt;"><initialMarking><text> 1 </text></initialMarking></place>
          </net>
          <net id="second"><place id="zzz"/></net>
        </pnml>"#;
        let net = parse_pnml(text).unwrap();
        assert_eq!(net.name(), "first & only");
        assert!(net.place_by_name("p<1>").is_some());
        assert!(net.place_by_name("zzz").is_none());
    }

    #[test]
    fn rejects_unsafe_markings_and_weights() {
        let fat = r#"<pnml><net id="n">
          <place id="p"><initialMarking><text>3</text></initialMarking></place>
        </net></pnml>"#;
        let err = parse_pnml(fat).unwrap_err().to_string();
        assert!(err.contains("1-safe"), "{err}");
        assert!(err.contains("line 2"), "{err}");

        let heavy = r#"<pnml><net id="n">
          <place id="p"/><transition id="t"/>
          <arc id="a" source="p" target="t"><inscription><text>2</text></inscription></arc>
        </net></pnml>"#;
        let err = parse_pnml(heavy).unwrap_err().to_string();
        assert!(err.contains("weight 2"), "{err}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for (text, needle) in [
            ("<pnml></pnml>", "no `<net>`"),
            ("<pnml><net id=\"n\">", "unclosed element"),
            ("<pnml><net id=\"n\"><place/></net></pnml>", "missing an `id`"),
            (
                "<pnml><net id=\"n\"><arc id=\"a\" source=\"x\"/></net></pnml>",
                "missing a `target`",
            ),
            (
                "<pnml><net id=\"n\"><place id=\"p\"/><arc id=\"a\" source=\"p\" target=\"q\"/></net></pnml>",
                "not a declared place or transition",
            ),
            (
                "<pnml><net id=\"n\"><place id=\"p\"/><place id=\"q\"/><arc id=\"a\" source=\"p\" target=\"q\"/></net></pnml>",
                "must connect a place and a transition",
            ),
            ("<pnml><net id=\"n\"></page></net></pnml>", "mismatched close tag"),
        ] {
            let err = parse_pnml(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
        }
    }

    #[test]
    fn duplicate_ids_fail_via_the_builder() {
        let text = r#"<pnml><net id="n"><place id="p"/><place id="p"/></net></pnml>"#;
        assert_eq!(
            parse_pnml(text).unwrap_err(),
            NetError::DuplicateName("p".into())
        );
    }

    #[test]
    fn parsed_net_verifies_like_a_native_one() {
        let net = parse_pnml(TOGGLE).unwrap();
        let report = crate::analysis::verify(&net).unwrap();
        assert_eq!(report.state_count, 2);
        assert!(!report.has_deadlock);
    }
}
