//! A first-class property language for safe nets: quantified marking
//! predicates in the shape the model-checking ecosystem expects
//! (reachability/safety queries à la SMPT and the MCC property formats).
//!
//! ```text
//! property := ("EF" | "AG") formula
//! formula  := formula "or" formula
//!           | formula "and" formula
//!           | "not" formula
//!           | "(" formula ")"
//!           | atom
//! atom     := "deadlock"
//!           | "fireable" "(" transition ")"
//!           | "m" "(" place ")" cmp integer       cmp := >= <= = != > <
//! ```
//!
//! `EF φ` asks whether some reachable marking satisfies `φ`; `AG φ` asks
//! whether *every* reachable marking does. Both reduce to searching for a
//! single **goal marking** (`φ` for `EF`, `¬φ` for `AG`): finding one
//! settles the question positively for `EF` and negatively for `AG`, and
//! exploring the whole space without finding one settles the converse.
//! The historical deadlock check is just the default property
//! `EF deadlock`.
//!
//! A [`Property`] stores *names* so it can outlive any particular net;
//! [`Property::compile`] resolves the names against a net (original,
//! reduced, or PNML-loaded) and returns the id-resolved evaluator used on
//! the hot path. [`CompiledProperty::visible_transitions`] computes the
//! visibility set that keeps stubborn-set reduction sound for non-default
//! properties (see DESIGN.md "Property-preserving stubborn sets").

use std::fmt;

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;

/// The path quantifier of a [`Property`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `EF φ` — some reachable marking satisfies φ.
    Ef,
    /// `AG φ` — every reachable marking satisfies φ.
    Ag,
}

/// Comparison operator of a token-count atom `m(p) <cmp> k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountOp {
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
}

impl CountOp {
    /// Applies the comparison: `tokens <op> k`.
    pub fn eval(self, tokens: u64, k: u64) -> bool {
        match self {
            CountOp::Ge => tokens >= k,
            CountOp::Le => tokens <= k,
            CountOp::Eq => tokens == k,
            CountOp::Ne => tokens != k,
            CountOp::Gt => tokens > k,
            CountOp::Lt => tokens < k,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            CountOp::Ge => ">=",
            CountOp::Le => "<=",
            CountOp::Eq => "=",
            CountOp::Ne => "!=",
            CountOp::Gt => ">",
            CountOp::Lt => "<",
        }
    }
}

/// An atomic predicate over one marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// `m(place) <op> k` — token count of a named place.
    Count {
        /// Place name, resolved at [`Property::compile`] time.
        place: String,
        /// The comparison.
        op: CountOp,
        /// The constant.
        k: u64,
    },
    /// `fireable(t)` — the named transition is enabled.
    Fireable(String),
    /// `deadlock` — no transition is enabled.
    Deadlock,
}

/// A boolean combination of [`Atom`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// One atom.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(f) = stack.pop() {
            match f {
                Formula::Atom(a) => out.push(a),
                Formula::Not(x) => stack.push(x),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        out
    }

    /// Renders with minimal parentheses (`or` < `and` < `not` < atom).
    fn render(&self, out: &mut String, parent: u8) {
        let prec = match self {
            Formula::Or(..) => 1,
            Formula::And(..) => 2,
            Formula::Not(..) => 3,
            Formula::Atom(_) => 4,
        };
        let parens = prec < parent;
        if parens {
            out.push('(');
        }
        match self {
            Formula::Atom(Atom::Deadlock) => out.push_str("deadlock"),
            Formula::Atom(Atom::Fireable(t)) => {
                out.push_str("fireable(");
                out.push_str(t);
                out.push(')');
            }
            Formula::Atom(Atom::Count { place, op, k }) => {
                out.push_str("m(");
                out.push_str(place);
                out.push_str(") ");
                out.push_str(op.as_str());
                out.push(' ');
                out.push_str(&k.to_string());
            }
            Formula::Not(x) => {
                out.push_str("not ");
                x.render(out, 3);
            }
            Formula::And(a, b) => {
                a.render(out, 2);
                out.push_str(" and ");
                b.render(out, 3);
            }
            Formula::Or(a, b) => {
                a.render(out, 1);
                out.push_str(" or ");
                b.render(out, 2);
            }
        }
        if parens {
            out.push(')');
        }
    }
}

/// A parsed property: a quantifier over a boolean marking predicate.
///
/// `Display` renders the canonical spelling — the one stamped into
/// checkpoints, cache keys and reports — and `Display` output re-parses
/// to an equal `Property`.
///
/// # Examples
///
/// ```
/// use petri::property::Property;
///
/// let p = Property::parse("EF (m(eat0) >= 1 && fireable(drop0))").unwrap();
/// assert_eq!(p.to_string(), "EF m(eat0) >= 1 and fireable(drop0)");
/// assert!(!p.is_default());
/// assert_eq!(Property::deadlock().to_string(), "EF deadlock");
/// assert!(Property::parse("EF deadlock").unwrap().is_default());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// The path quantifier.
    pub quantifier: Quantifier,
    /// The marking predicate.
    pub formula: Formula,
}

impl Property {
    /// The default property of every engine: `EF deadlock`.
    pub fn deadlock() -> Self {
        Property {
            quantifier: Quantifier::Ef,
            formula: Formula::Atom(Atom::Deadlock),
        }
    }

    /// `true` iff this is exactly the default property `EF deadlock`, in
    /// which case every engine takes its historical deadlock path and the
    /// output is byte-identical to a property-less run.
    pub fn is_default(&self) -> bool {
        self.quantifier == Quantifier::Ef && self.formula == Formula::Atom(Atom::Deadlock)
    }

    /// Parses the property grammar (see the module docs). Keywords are
    /// case-insensitive; `&&`/`&`, `||`/`|` and `!` are accepted aliases
    /// for `and`, `or` and `not`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first offending token
    /// and its column.
    pub fn parse(text: &str) -> Result<Self, String> {
        Parser::new(text).property()
    }

    /// Resolves place/transition names against `net`.
    ///
    /// # Errors
    ///
    /// Names a place or transition the net does not have.
    pub fn compile(&self, net: &PetriNet) -> Result<CompiledProperty, String> {
        fn go(f: &Formula, net: &PetriNet) -> Result<CompiledFormula, String> {
            Ok(match f {
                Formula::Atom(Atom::Deadlock) => CompiledFormula::Atom(CompiledAtom::Deadlock),
                Formula::Atom(Atom::Fireable(t)) => {
                    let id = net.transition_by_name(t).ok_or_else(|| {
                        format!(
                            "property names unknown transition `{t}` (net `{}`)",
                            net.name()
                        )
                    })?;
                    CompiledFormula::Atom(CompiledAtom::Fireable(id))
                }
                Formula::Atom(Atom::Count { place, op, k }) => {
                    let id = net.place_by_name(place).ok_or_else(|| {
                        format!(
                            "property names unknown place `{place}` (net `{}`)",
                            net.name()
                        )
                    })?;
                    CompiledFormula::Atom(CompiledAtom::Count {
                        place: id,
                        op: *op,
                        k: *k,
                    })
                }
                Formula::Not(x) => CompiledFormula::Not(Box::new(go(x, net)?)),
                Formula::And(a, b) => {
                    CompiledFormula::And(Box::new(go(a, net)?), Box::new(go(b, net)?))
                }
                Formula::Or(a, b) => {
                    CompiledFormula::Or(Box::new(go(a, net)?), Box::new(go(b, net)?))
                }
            })
        }
        Ok(CompiledProperty {
            quantifier: self.quantifier,
            formula: go(&self.formula, net)?,
        })
    }

    /// Names of the places the property observes (token-count atoms).
    /// A structural reduction must keep these places intact.
    pub fn observed_places(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .formula
            .atoms()
            .into_iter()
            .filter_map(|a| match a {
                Atom::Count { place, .. } => Some(place.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Names of the transitions the property observes (fireability atoms).
    /// A structural reduction must keep these transitions intact.
    pub fn observed_transitions(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .formula
            .atoms()
            .into_iter()
            .filter_map(|a| match a {
                Atom::Fireable(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        match self.quantifier {
            Quantifier::Ef => out.push_str("EF "),
            Quantifier::Ag => out.push_str("AG "),
        }
        self.formula.render(&mut out, 0);
        f.write_str(&out)
    }
}

/// Id-resolved form of an [`Atom`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledAtom {
    /// `m(place) <op> k`.
    Count {
        /// The resolved place.
        place: PlaceId,
        /// The comparison.
        op: CountOp,
        /// The constant.
        k: u64,
    },
    /// `fireable(t)`.
    Fireable(TransitionId),
    /// `deadlock`.
    Deadlock,
}

/// Id-resolved form of a [`Formula`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledFormula {
    /// One atom.
    Atom(CompiledAtom),
    /// Negation.
    Not(Box<CompiledFormula>),
    /// Conjunction.
    And(Box<CompiledFormula>, Box<CompiledFormula>),
    /// Disjunction.
    Or(Box<CompiledFormula>, Box<CompiledFormula>),
}

impl CompiledFormula {
    /// Evaluates the formula at `m`.
    pub fn eval(&self, net: &PetriNet, m: &Marking) -> bool {
        match self {
            CompiledFormula::Atom(CompiledAtom::Deadlock) => net.is_dead(m),
            CompiledFormula::Atom(CompiledAtom::Fireable(t)) => net.enabled(*t, m),
            CompiledFormula::Atom(CompiledAtom::Count { place, op, k }) => {
                op.eval(u64::from(m.is_marked(*place)), *k)
            }
            CompiledFormula::Not(x) => !x.eval(net, m),
            CompiledFormula::And(a, b) => a.eval(net, m) && b.eval(net, m),
            CompiledFormula::Or(a, b) => a.eval(net, m) || b.eval(net, m),
        }
    }

    fn atoms(&self) -> Vec<&CompiledAtom> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(f) = stack.pop() {
            match f {
                CompiledFormula::Atom(a) => out.push(a),
                CompiledFormula::Not(x) => stack.push(x),
                CompiledFormula::And(a, b) | CompiledFormula::Or(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        out
    }
}

/// A property with its names resolved against one specific net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProperty {
    /// The path quantifier.
    pub quantifier: Quantifier,
    /// The id-resolved predicate.
    pub formula: CompiledFormula,
}

impl CompiledProperty {
    /// Evaluates the bare predicate φ at `m`.
    pub fn eval(&self, net: &PetriNet, m: &Marking) -> bool {
        self.formula.eval(net, m)
    }

    /// The **goal predicate** the engines search for: `φ` under `EF`,
    /// `¬φ` under `AG`. Finding a goal marking answers the property
    /// positively (`EF` holds) or negatively (`AG` is violated) — exit
    /// code 1 with a witness either way; completing the exploration
    /// without one answers the converse (exit code 0).
    pub fn goal(&self, net: &PetriNet, m: &Marking) -> bool {
        match self.quantifier {
            Quantifier::Ef => self.eval(net, m),
            Quantifier::Ag => !self.eval(net, m),
        }
    }

    /// The **visible transitions** of the property: every transition whose
    /// firing can change the truth of some atom. A stubborn-set search
    /// stays sound for this property iff the visible transitions are
    /// seeded into every closure (see DESIGN.md).
    ///
    /// Returns `None` when the goal is the plain deadlock predicate
    /// (`EF deadlock`), which classical stubborn sets already preserve
    /// with no visibility condition. A `deadlock` atom inside any larger
    /// formula makes *all* transitions visible (no reduction).
    pub fn visible_transitions(&self, net: &PetriNet) -> Option<Vec<TransitionId>> {
        if self.quantifier == Quantifier::Ef
            && self.formula == CompiledFormula::Atom(CompiledAtom::Deadlock)
        {
            return None;
        }
        let mut visible = vec![false; net.transition_count()];
        // a transition changes m(p) iff p is in exactly one of its pre/post
        // sets (a pure self-loop consumes and reproduces the token)
        let changes = |t: TransitionId, p: PlaceId| {
            net.pre_place_set(t).contains(p.index()) != net.post_place_set(t).contains(p.index())
        };
        for atom in self.formula.atoms() {
            match atom {
                CompiledAtom::Deadlock => {
                    visible.iter_mut().for_each(|v| *v = true);
                    break;
                }
                CompiledAtom::Count { place, .. } => {
                    for t in net.transitions() {
                        visible[t.index()] |= changes(t, *place);
                    }
                }
                CompiledAtom::Fireable(obs) => {
                    // enabledness of `obs` depends exactly on the marking
                    // of its pre-places
                    for t in net.transitions() {
                        visible[t.index()] |= net.pre_places(*obs).iter().any(|&p| changes(t, p));
                    }
                }
            }
        }
        Some(net.transitions().filter(|t| visible[t.index()]).collect())
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    LParen,
    RParen,
    Cmp(CountOp),
    And,
    Or,
    Not,
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn new(text: &str) -> Self {
        let mut toks = Vec::new();
        let bytes: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let col = i + 1;
            match c {
                c if c.is_whitespace() => i += 1,
                '(' => {
                    toks.push((col, Tok::LParen));
                    i += 1;
                }
                ')' => {
                    toks.push((col, Tok::RParen));
                    i += 1;
                }
                '>' | '<' | '=' | '!' | '&' | '|' => {
                    let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                    let (tok, width) = match two.as_str() {
                        ">=" => (Tok::Cmp(CountOp::Ge), 2),
                        "<=" => (Tok::Cmp(CountOp::Le), 2),
                        "==" => (Tok::Cmp(CountOp::Eq), 2),
                        "!=" => (Tok::Cmp(CountOp::Ne), 2),
                        "&&" => (Tok::And, 2),
                        "||" => (Tok::Or, 2),
                        _ => match c {
                            '>' => (Tok::Cmp(CountOp::Gt), 1),
                            '<' => (Tok::Cmp(CountOp::Lt), 1),
                            '=' => (Tok::Cmp(CountOp::Eq), 1),
                            '!' => (Tok::Not, 1),
                            '&' => (Tok::And, 1),
                            _ => (Tok::Or, 1),
                        },
                    };
                    toks.push((col, tok));
                    i += width;
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    // 20 digits cannot fit u64; report instead of panicking
                    let n = text.parse().unwrap_or(u64::MAX);
                    toks.push((col, Tok::Int(n)));
                }
                c if is_ident_char(c) => {
                    let start = i;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    let word: String = bytes[start..i].iter().collect();
                    let tok = match word.to_ascii_lowercase().as_str() {
                        "and" => Tok::And,
                        "or" => Tok::Or,
                        "not" => Tok::Not,
                        _ => Tok::Ident(word),
                    };
                    toks.push((col, tok));
                }
                other => {
                    // an unlexable character becomes a poison identifier
                    // that the grammar will reject with its column
                    toks.push((col, Tok::Ident(other.to_string())));
                    i += 1;
                }
            }
        }
        Parser {
            toks,
            pos: 0,
            len: bytes.len(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn col(&self) -> usize {
        self.toks.get(self.pos).map_or(self.len + 1, |(c, _)| *c)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), String> {
        let col = self.col();
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            _ => Err(format!("expected {what} at column {col}")),
        }
    }

    fn property(&mut self) -> Result<Property, String> {
        let col = self.col();
        let quantifier = match self.bump() {
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("EF") => Quantifier::Ef,
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("AG") => Quantifier::Ag,
            _ => {
                return Err(format!(
                    "property must start with `EF` or `AG` (column {col})"
                ))
            }
        };
        let formula = self.disjunction()?;
        if let Some(_t) = self.peek() {
            return Err(format!(
                "unexpected trailing input at column {}",
                self.col()
            ));
        }
        Ok(Property {
            quantifier,
            formula,
        })
    }

    fn disjunction(&mut self) -> Result<Formula, String> {
        let mut left = self.conjunction()?;
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            let right = self.conjunction()?;
            left = Formula::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Formula, String> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.bump();
            let right = self.unary()?;
            left = Formula::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, String> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.disjunction()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, String> {
        let col = self.col();
        let word = match self.bump() {
            Some(Tok::Ident(w)) => w,
            _ => {
                return Err(format!(
                    "expected `deadlock`, `fireable(t)` or `m(p)` at column {col}"
                ))
            }
        };
        if word.eq_ignore_ascii_case("deadlock") {
            return Ok(Formula::Atom(Atom::Deadlock));
        }
        if word.eq_ignore_ascii_case("fireable") {
            self.expect(&Tok::LParen, "`(` after `fireable`")?;
            let name = self.name("transition")?;
            self.expect(&Tok::RParen, "`)`")?;
            return Ok(Formula::Atom(Atom::Fireable(name)));
        }
        if word == "m" || word == "M" {
            self.expect(&Tok::LParen, "`(` after `m`")?;
            let place = self.name("place")?;
            self.expect(&Tok::RParen, "`)`")?;
            let col = self.col();
            let op = match self.bump() {
                Some(Tok::Cmp(op)) => op,
                _ => {
                    return Err(format!(
                        "expected a comparison (>=, <=, =, !=, >, <) at column {col}"
                    ))
                }
            };
            let col = self.col();
            let k = match self.bump() {
                Some(Tok::Int(k)) => k,
                _ => return Err(format!("expected an integer at column {col}")),
            };
            return Ok(Formula::Atom(Atom::Count { place, op, k }));
        }
        Err(format!(
            "unknown atom `{word}` at column {col} (expected `deadlock`, `fireable(t)` or `m(p) >= k`)"
        ))
    }

    fn name(&mut self, what: &str) -> Result<String, String> {
        let col = self.col();
        match self.bump() {
            Some(Tok::Ident(w)) => Ok(w),
            Some(Tok::Int(n)) => Ok(n.to_string()),
            _ => Err(format!("expected a {what} name at column {col}")),
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    fn diamond() -> PetriNet {
        // p -t1-> q -t2-> r, plus a self-loop observer s <-> loopt
        let mut b = NetBuilder::new("d");
        let p = b.place_marked("p");
        let q = b.place("q");
        let r = b.place("r");
        let s = b.place_marked("s");
        b.transition("t1", [p], [q]);
        b.transition("t2", [q], [r]);
        b.transition("loopt", [s], [s]);
        b.build().unwrap()
    }

    #[test]
    fn default_property_round_trips() {
        let p = Property::deadlock();
        assert!(p.is_default());
        assert_eq!(p.to_string(), "EF deadlock");
        assert_eq!(Property::parse("EF deadlock").unwrap(), p);
        assert_eq!(Property::parse("ef DEADLOCK").unwrap(), p);
        assert_eq!(Property::parse("EF (deadlock)").unwrap(), p);
        assert!(!Property::parse("AG deadlock").unwrap().is_default());
        assert!(!Property::parse("EF not deadlock").unwrap().is_default());
    }

    #[test]
    fn parser_handles_precedence_and_aliases() {
        let p = Property::parse("EF m(a) >= 1 or m(b) = 0 and not fireable(t)").unwrap();
        // `and` binds tighter than `or`
        assert_eq!(
            p.to_string(),
            "EF m(a) >= 1 or m(b) = 0 and not fireable(t)"
        );
        let q = Property::parse("EF m(a)>=1 || (m(b)==0 && !fireable(t))").unwrap();
        assert_eq!(p, q);
        // canonical text re-parses to the same AST
        assert_eq!(Property::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn parser_rejects_garbage_with_columns() {
        for (text, needle) in [
            ("", "must start with `EF` or `AG`"),
            ("XX deadlock", "must start with `EF` or `AG`"),
            ("EF", "expected `deadlock`"),
            ("EF m(p)", "expected a comparison"),
            ("EF m(p) >=", "expected an integer"),
            ("EF (deadlock", "expected `)`"),
            ("EF deadlock extra", "trailing input"),
            ("EF frob(t)", "unknown atom"),
            ("EF fireable()", "expected a transition name"),
        ] {
            let err = Property::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
        }
    }

    #[test]
    fn compile_resolves_names_and_rejects_unknowns() {
        let net = diamond();
        let ok = Property::parse("EF m(q) >= 1 and fireable(t2)").unwrap();
        let c = ok.compile(&net).unwrap();
        let m0 = net.initial_marking();
        assert!(!c.eval(&net, m0));
        let m1 = net.fire(net.transition_by_name("t1").unwrap(), m0).unwrap();
        assert!(c.eval(&net, &m1));
        let bad = Property::parse("EF m(nope) = 1").unwrap();
        assert!(bad.compile(&net).unwrap_err().contains("nope"));
        let bad_t = Property::parse("EF fireable(nope)").unwrap();
        assert!(bad_t.compile(&net).unwrap_err().contains("nope"));
    }

    #[test]
    fn goal_flips_under_ag() {
        let net = diamond();
        let ef = Property::parse("EF m(q) >= 1")
            .unwrap()
            .compile(&net)
            .unwrap();
        let ag = Property::parse("AG m(q) = 0")
            .unwrap()
            .compile(&net)
            .unwrap();
        let m0 = net.initial_marking();
        let m1 = net.fire(net.transition_by_name("t1").unwrap(), m0).unwrap();
        assert!(!ef.goal(&net, m0) && ef.goal(&net, &m1));
        // the AG goal is the *violation* — the same markings
        assert!(!ag.goal(&net, m0) && ag.goal(&net, &m1));
    }

    #[test]
    fn deadlock_atom_evaluates_deadness() {
        let net = diamond();
        let c = Property::deadlock().compile(&net).unwrap();
        let m0 = net.initial_marking();
        assert!(!c.goal(&net, m0));
        let m1 = net.fire(net.transition_by_name("t1").unwrap(), m0).unwrap();
        let m2 = net
            .fire(net.transition_by_name("t2").unwrap(), &m1)
            .unwrap();
        // loopt keeps s alive — not dead even at the end of the chain
        assert!(!c.goal(&net, &m2));
    }

    #[test]
    fn visible_transitions_default_is_none() {
        let net = diamond();
        let c = Property::deadlock().compile(&net).unwrap();
        assert!(c.visible_transitions(&net).is_none());
        // AG deadlock is NOT the default goal: all transitions visible
        let ag = Property::parse("AG deadlock")
            .unwrap()
            .compile(&net)
            .unwrap();
        assert_eq!(
            ag.visible_transitions(&net).unwrap().len(),
            net.transition_count()
        );
    }

    #[test]
    fn visible_transitions_track_atom_support() {
        let net = diamond();
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        // m(q): t1 produces q, t2 consumes q; loopt self-loops on s only
        let c = Property::parse("EF m(q) >= 1")
            .unwrap()
            .compile(&net)
            .unwrap();
        assert_eq!(c.visible_transitions(&net).unwrap(), vec![t1, t2]);
        // a self-loop on the observed place is invisible (net effect 0)
        let s = Property::parse("EF m(s) = 0")
            .unwrap()
            .compile(&net)
            .unwrap();
        assert_eq!(
            s.visible_transitions(&net).unwrap(),
            Vec::<TransitionId>::new()
        );
        // fireable(t2): anything changing q (= pre(t2)) is visible
        let f = Property::parse("AG not fireable(t2)")
            .unwrap()
            .compile(&net)
            .unwrap();
        assert_eq!(f.visible_transitions(&net).unwrap(), vec![t1, t2]);
    }

    #[test]
    fn observed_names_deduplicate() {
        let p =
            Property::parse("EF m(a) >= 1 and (m(a) = 0 or fireable(t) or fireable(u))").unwrap();
        assert_eq!(p.observed_places(), vec!["a".to_string()]);
        assert_eq!(
            p.observed_transitions(),
            vec!["t".to_string(), "u".to_string()]
        );
        assert!(Property::deadlock().observed_places().is_empty());
    }

    #[test]
    fn count_ops_evaluate_on_safe_range() {
        let net = diamond();
        for (text, at_m0) in [
            ("EF m(p) >= 1", true),
            ("EF m(p) > 0", true),
            ("EF m(p) <= 0", false),
            ("EF m(p) < 1", false),
            ("EF m(p) != 0", true),
            ("EF m(p) = 1", true),
            ("EF m(p) >= 2", false), // unattainable on a safe net
        ] {
            let c = Property::parse(text).unwrap().compile(&net).unwrap();
            assert_eq!(c.eval(&net, net.initial_marking()), at_m0, "{text}");
        }
    }
}
