//! Exhaustive reachability analysis ("conventional analysis", §2.2).
//!
//! Builds the full reachability graph `RG(N)` of a safe net by breadth-first
//! exploration with hashed visited states. This is the ground truth the
//! reduced analyses are compared against, and the "States" column of the
//! paper's Table 1.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use crate::budget::{Budget, CoverageStats, Outcome};
use crate::checkpoint::{
    read_marking, write_checkpoint, write_marking, ByteReader, ByteWriter, CheckpointConfig,
    CheckpointError, EngineKind, Snapshot,
};
use crate::error::NetError;
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::parallel::{
    default_threads, explore_frontier_seeded, FrontierOptions, FrontierSeed, EDGE_BYTES,
    STATE_OVERHEAD_BYTES,
};

/// Section tags of a [`EngineKind::Full`] snapshot.
mod section {
    pub const STATES: u32 = 1;
    pub const EXPANDED: u32 = 2;
    pub const EDGES: u32 = 3;
    pub const DEADLOCKS: u32 = 4;
    pub const COUNTERS: u32 = 5;
}

/// Identifier of a state (vertex) in a [`ReachabilityGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u32);

impl StateId {
    /// The raw index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Internal constructor for indexes already known to be in range
    /// (anything `< states.len()` of a built graph, since every insertion
    /// went through [`try_new`](Self::try_new)).
    fn new(i: usize) -> Self {
        debug_assert!(
            u32::try_from(i).is_ok(),
            "state index validated at insertion"
        );
        StateId(i as u32)
    }

    /// Fallible constructor used at state-insertion time: a net with more
    /// than `u32::MAX` states yields [`NetError::StateIdOverflow`] instead
    /// of panicking.
    fn try_new(i: usize) -> Result<Self, NetError> {
        u32::try_from(i)
            .map(StateId)
            .map_err(|_| NetError::StateIdOverflow)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Options controlling [`ReachabilityGraph::explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Abort with [`NetError::StateLimit`] once this many states are stored.
    pub max_states: usize,
    /// Record the labelled edges (needed for path queries and DOT export);
    /// disable to save memory when only the state count matters.
    pub record_edges: bool,
    /// Worker threads for the frontier exploration. The default is the
    /// machine's available parallelism; `1` runs the exact historical
    /// serial loop (fully deterministic state ids). For any thread count
    /// the reachable state set, deadlock set, and edge count are
    /// identical; ids may permute when `threads > 1`.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: usize::MAX,
            record_edges: true,
            threads: default_threads(),
        }
    }
}

/// The full reachability graph of a safe Petri net.
///
/// # Examples
///
/// ```
/// use petri::{NetBuilder, ReachabilityGraph};
///
/// // Three concurrent transitions: 2^3 = 8 reachable states (paper Fig. 1).
/// let mut b = NetBuilder::new("fig1");
/// for i in 0..3 {
///     let p = b.place_marked(format!("in{i}"));
///     let q = b.place(format!("out{i}"));
///     b.transition(format!("t{i}"), [p], [q]);
/// }
/// let net = b.build()?;
/// let rg = ReachabilityGraph::explore(&net)?;
/// assert_eq!(rg.state_count(), 8);
/// assert_eq!(rg.deadlocks().len(), 1);
/// # Ok::<(), petri::NetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    states: Vec<Marking>,
    /// Per-state "successors computed" flag; the `false` entries are the
    /// frontier a checkpointed run resumes from.
    expanded: Vec<bool>,
    /// Per-state outgoing labelled edges; empty if `record_edges` was off.
    succ: Vec<Vec<(TransitionId, StateId)>>,
    initial: StateId,
    deadlocks: Vec<StateId>,
    edge_count: usize,
    elapsed: Duration,
    threads_used: usize,
}

impl ReachabilityGraph {
    /// Explores the full state space with default options.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotSafe`] if any firing violates safeness.
    pub fn explore(net: &PetriNet) -> Result<Self, NetError> {
        Self::explore_with(net, &ExploreOptions::default())
    }

    /// Explores the full state space with explicit options.
    ///
    /// This is the legacy all-or-nothing entry point: a hit state limit is
    /// reported as an error and the partial graph is discarded. Prefer
    /// [`explore_bounded`](Self::explore_bounded), which returns the graph
    /// computed so far when a budget runs out.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotSafe`] on a safeness violation, or
    /// [`NetError::StateLimit`] if `opts.max_states` is exceeded.
    pub fn explore_with(net: &PetriNet, opts: &ExploreOptions) -> Result<Self, NetError> {
        match Self::explore_bounded(net, opts, &Budget::default())? {
            Outcome::Complete(rg) => Ok(rg),
            Outcome::Partial { .. } => Err(NetError::StateLimit(opts.max_states)),
        }
    }

    /// Explores the state space under a cooperative resource [`Budget`].
    ///
    /// The effective state cap is the tighter of `opts.max_states` and
    /// `budget.max_states`. When any budget axis (states, bytes, deadline,
    /// cancellation) is exhausted, the graph built so far is returned as
    /// [`Outcome::Partial`] with [`CoverageStats`] — every stored marking
    /// is genuinely reachable, so a deadlock found in a partial graph is a
    /// real counterexample, but deadlock *freedom* can only be concluded
    /// from [`Outcome::Complete`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotSafe`] on a safeness violation,
    /// [`NetError::WorkerPanicked`] if a parallel worker died, or
    /// [`NetError::StateIdOverflow`] past `u32::MAX` states.
    pub fn explore_bounded(
        net: &PetriNet,
        opts: &ExploreOptions,
        budget: &Budget,
    ) -> Result<Outcome<Self>, NetError> {
        let budget = budget.clone().cap_states(opts.max_states);
        Self::explore_resumed(net, opts, &budget, None)
    }

    /// Like [`explore_bounded`](Self::explore_bounded), but optionally
    /// resuming a prior partial graph and/or writing crash-safe snapshots.
    ///
    /// * `resume` — a snapshot previously produced by an interrupted run of
    ///   this engine over the *same net* (validated via the embedded
    ///   fingerprint). The exploration continues from the stored frontier
    ///   and, run to completion, reaches the identical verdict, state
    ///   count, and witnesses as a single uninterrupted run.
    /// * `ckpt.path` — budget exhaustion writes a snapshot there before
    ///   the partial outcome is returned.
    /// * `ckpt.every` — additionally snapshots roughly every `every` newly
    ///   stored states: the run proceeds in segments capped at
    ///   `stored + every` states, each segment quiescing its workers at
    ///   the frontier barrier before the snapshot is taken, then
    ///   continuing in-process.
    ///
    /// # Errors
    ///
    /// Everything [`explore_bounded`](Self::explore_bounded) returns, plus
    /// [`NetError::Checkpoint`] when `resume` does not belong to this
    /// net/engine/options or a snapshot cannot be written.
    pub fn explore_checkpointed(
        net: &PetriNet,
        opts: &ExploreOptions,
        budget: &Budget,
        ckpt: &CheckpointConfig,
        resume: Option<&Snapshot>,
    ) -> Result<Outcome<Self>, NetError> {
        let real_budget = budget.clone().cap_states(opts.max_states);
        let mut prior = match resume {
            Some(snap) => Some(
                Self::from_snapshot(net, snap, opts.record_edges)
                    .map_err(|e| NetError::Checkpoint(e.to_string()))?,
            ),
            None => None,
        };
        loop {
            let mut segment = real_budget.clone();
            if let (Some(every), Some(_)) = (ckpt.every, &ckpt.path) {
                let stored = prior.as_ref().map_or(1, ReachabilityGraph::state_count);
                segment.max_states = segment.max_states.min(stored.saturating_add(every.max(1)));
            }
            match Self::explore_resumed(net, opts, &segment, prior.take())? {
                Outcome::Complete(g) => return Ok(Outcome::Complete(g)),
                Outcome::Partial {
                    result, coverage, ..
                } => {
                    if let Some(path) = &ckpt.path {
                        let mut snap = result.to_snapshot(net, opts.record_edges);
                        ckpt.annotate(&mut snap);
                        write_checkpoint(path, &snap)
                            .map_err(|e| NetError::Checkpoint(e.to_string()))?;
                    }
                    // Distinguish the segment's synthetic state cap from
                    // genuine exhaustion of the caller's budget: only the
                    // latter ends the run.
                    match real_budget.exceeded(coverage.states_stored, coverage.bytes_estimate) {
                        None => prior = Some(result),
                        Some(real_reason) => {
                            return Ok(Outcome::Partial {
                                result,
                                reason: real_reason,
                                coverage,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Continues exploring `prior` (or starts fresh) under `budget`.
    fn explore_resumed(
        net: &PetriNet,
        opts: &ExploreOptions,
        budget: &Budget,
        prior: Option<Self>,
    ) -> Result<Outcome<Self>, NetError> {
        if opts.threads.max(1) > 1 {
            return Self::explore_parallel(net, opts, budget, prior);
        }
        let start = Instant::now();
        let (mut states, mut expanded, mut succ, mut deadlocks, mut edge_count, base_elapsed) =
            match prior {
                Some(g) => (
                    g.states,
                    g.expanded,
                    g.succ,
                    g.deadlocks,
                    g.edge_count,
                    g.elapsed,
                ),
                None => (
                    vec![net.initial_marking().clone()],
                    vec![false],
                    vec![Vec::new()],
                    Vec::new(),
                    0,
                    Duration::ZERO,
                ),
            };
        let mut index: HashMap<Marking, StateId> = states
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), StateId::new(i)))
            .collect();
        let recorded_edges: usize = succ.iter().map(Vec::len).sum();
        let mut bytes = states
            .iter()
            .map(|m| m.approx_bytes() + STATE_OVERHEAD_BYTES)
            .sum::<usize>()
            + recorded_edges * EDGE_BYTES;
        let mut worklist: VecDeque<usize> = (0..states.len()).filter(|&i| !expanded[i]).collect();
        let mut expanded_count = states.len() - worklist.len();

        let mut exhausted = None;
        while let Some(&frontier) = worklist.front() {
            if let Some(reason) = budget.exceeded(states.len(), bytes) {
                exhausted = Some(reason);
                break;
            }
            worklist.pop_front();
            let sid = StateId::new(frontier);
            // take the marking out instead of cloning it; the index still
            // holds an equal key, so lookups during expansion are unaffected
            let m = std::mem::replace(&mut states[frontier], Marking::empty(0));
            let mut any = false;
            let edges_mark = succ[sid.index()].len();
            let count_mark = edge_count;
            let mut aborted = None;
            for t in net.transitions() {
                if !net.enabled(t, &m) {
                    continue;
                }
                // re-check between successors so a single wide fan-out
                // overshoots the budget by at most one state (mirrors the
                // parallel engine's per-insertion check)
                if let Some(reason) = budget.exceeded(states.len(), bytes) {
                    aborted = Some(reason);
                    break;
                }
                any = true;
                let next = net.fire(t, &m)?;
                let nid = match index.entry(next) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let nid = StateId::try_new(states.len())?;
                        bytes += e.key().approx_bytes() + STATE_OVERHEAD_BYTES;
                        states.push(e.key().clone());
                        expanded.push(false);
                        succ.push(Vec::new());
                        worklist.push_back(nid.index());
                        e.insert(nid);
                        nid
                    }
                };
                edge_count += 1;
                if opts.record_edges {
                    bytes += EDGE_BYTES;
                    succ[sid.index()].push((t, nid));
                }
            }
            states[frontier] = m;
            if let Some(reason) = aborted {
                // roll the interrupted expansion back so this state stays
                // cleanly unexpanded (succ recorded ⟺ expanded) and a
                // resumed run re-expands it exactly once; successors
                // already stored stay — they are genuinely reachable
                let rolled = succ[sid.index()].len() - edges_mark;
                bytes -= rolled * EDGE_BYTES;
                succ[sid.index()].truncate(edges_mark);
                edge_count = count_mark;
                exhausted = Some(reason);
                break;
            }
            expanded[frontier] = true;
            expanded_count += 1;
            if !any {
                deadlocks.push(sid);
            }
        }

        let elapsed = base_elapsed + start.elapsed();
        let stored = states.len();
        let graph = ReachabilityGraph {
            states,
            expanded,
            succ,
            initial: StateId::new(0),
            deadlocks,
            edge_count,
            elapsed,
            threads_used: 1,
        };
        Ok(match exhausted {
            None => Outcome::Complete(graph),
            // re-classify at the stop: a cancel raised while the reason
            // was latched must win deterministically (supervisor races)
            Some(reason) => Outcome::Partial {
                result: graph,
                reason: budget.stop_reason(reason),
                coverage: CoverageStats {
                    states_stored: stored,
                    states_expanded: expanded_count,
                    frontier_len: stored.saturating_sub(expanded_count),
                    bytes_estimate: bytes,
                    elapsed,
                },
            },
        })
    }

    /// The multi-threaded path of [`explore_resumed`](Self::explore_resumed),
    /// built on the shared [`parallel`](crate::parallel) frontier engine.
    fn explore_parallel(
        net: &PetriNet,
        opts: &ExploreOptions,
        budget: &Budget,
        prior: Option<Self>,
    ) -> Result<Outcome<Self>, NetError> {
        let start = Instant::now();
        let threads = opts.threads;
        let (seed, base_elapsed) = match prior {
            Some(g) => (
                FrontierSeed {
                    states: g.states,
                    expanded: g.expanded,
                    succ: g
                        .succ
                        .into_iter()
                        .map(|edges| edges.into_iter().map(|(t, dst)| (t, dst.0)).collect())
                        .collect(),
                    deadlocks: g.deadlocks.into_iter().map(|d| d.0).collect(),
                    edge_count: g.edge_count,
                },
                g.elapsed,
            ),
            None => (
                FrontierSeed::initial(net.initial_marking().clone()),
                Duration::ZERO,
            ),
        };
        // the spread fills the cfg-gated fault-injection field in test builds
        #[allow(clippy::needless_update)]
        let outcome = explore_frontier_seeded(
            seed,
            &FrontierOptions {
                threads,
                record_edges: opts.record_edges,
                budget: budget.clone(),
                ..Default::default()
            },
            |m, out| {
                for t in net.transitions() {
                    if net.enabled(t, m) {
                        out.push((t, net.fire(t, m)?));
                    }
                }
                Ok(())
            },
        )?;
        Ok(outcome.map(|result| ReachabilityGraph {
            states: result.states,
            expanded: result.expanded,
            succ: result
                .succ
                .into_iter()
                .map(|edges| {
                    edges
                        .into_iter()
                        .map(|(t, dst)| (t, StateId::new(dst as usize)))
                        .collect()
                })
                .collect(),
            initial: StateId::new(0),
            deadlocks: result
                .deadlocks
                .into_iter()
                .map(|id| StateId::new(id as usize))
                .collect(),
            edge_count: result.edge_count,
            elapsed: base_elapsed + start.elapsed(),
            threads_used: threads,
        }))
    }

    /// Serializes this (typically partial) graph as a checkpoint snapshot.
    ///
    /// `record_edges` must match the [`ExploreOptions::record_edges`] the
    /// graph was explored with; it is stored and re-checked on load so a
    /// resumed run cannot silently end up with half-recorded edges.
    pub fn to_snapshot(&self, net: &PetriNet, record_edges: bool) -> Snapshot {
        let mut snap = Snapshot::new(EngineKind::Full, net);

        let mut w = ByteWriter::new();
        w.u32(net.place_count() as u32);
        w.usize(self.states.len());
        for m in &self.states {
            write_marking(&mut w, m);
        }
        snap.push_section(section::STATES, w.into_bytes());

        let mut w = ByteWriter::new();
        w.bools(&self.expanded);
        snap.push_section(section::EXPANDED, w.into_bytes());

        let mut w = ByteWriter::new();
        w.u8(u8::from(record_edges));
        for edges in &self.succ {
            w.u32(edges.len() as u32);
            for &(t, dst) in edges {
                w.u32(t.index() as u32);
                w.u32(dst.0);
            }
        }
        snap.push_section(section::EDGES, w.into_bytes());

        let mut w = ByteWriter::new();
        w.usize(self.deadlocks.len());
        for &d in &self.deadlocks {
            w.u32(d.0);
        }
        snap.push_section(section::DEADLOCKS, w.into_bytes());

        let mut w = ByteWriter::new();
        w.usize(self.edge_count);
        w.u64(self.elapsed.as_nanos() as u64);
        snap.push_section(section::COUNTERS, w.into_bytes());

        snap
    }

    /// Rebuilds a (typically partial) graph from a snapshot, validating
    /// the engine kind, net fingerprint, and every structural invariant of
    /// the payload.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] when the snapshot belongs to a
    /// different engine/net, was taken with a different `record_edges`
    /// setting, or is internally inconsistent.
    pub fn from_snapshot(
        net: &PetriNet,
        snap: &Snapshot,
        record_edges: bool,
    ) -> Result<Self, CheckpointError> {
        snap.validate(EngineKind::Full, net.fingerprint())?;

        let mut r = ByteReader::new(snap.require_section(section::STATES)?, section::STATES);
        let place_count = r.u32()? as usize;
        if place_count != net.place_count() {
            return Err(r.malformed(format!(
                "snapshot has {place_count} places, net has {}",
                net.place_count()
            )));
        }
        let count = r.usize()?;
        let mut states = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            states.push(read_marking(&mut r, place_count)?);
        }
        r.finish()?;
        if states.is_empty() || &states[0] != net.initial_marking() {
            return Err(CheckpointError::Malformed {
                section: section::STATES,
                detail: "state 0 is not the net's initial marking".into(),
            });
        }
        let distinct: std::collections::HashSet<&Marking> = states.iter().collect();
        if distinct.len() != states.len() {
            return Err(CheckpointError::Malformed {
                section: section::STATES,
                detail: "duplicate markings in state table".into(),
            });
        }

        let mut r = ByteReader::new(snap.require_section(section::EXPANDED)?, section::EXPANDED);
        let expanded = r.bools()?;
        r.finish()?;
        if expanded.len() != count {
            return Err(CheckpointError::Malformed {
                section: section::EXPANDED,
                detail: "expanded bitmap length disagrees with state count".into(),
            });
        }

        let mut r = ByteReader::new(snap.require_section(section::EDGES)?, section::EDGES);
        let snap_recorded = r.u8()? != 0;
        if snap_recorded != record_edges {
            return Err(r.malformed(format!(
                "snapshot was taken with record_edges={snap_recorded}, run uses {record_edges}"
            )));
        }
        let mut succ = Vec::with_capacity(count);
        let mut recorded = 0usize;
        for _ in 0..count {
            let n = r.u32()? as usize;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let t = r.u32()? as usize;
                let dst = r.u32()? as usize;
                if t >= net.transition_count() || dst >= count {
                    return Err(r.malformed("edge references an out-of-range id"));
                }
                edges.push((TransitionId::new(t), StateId::new(dst)));
            }
            recorded += n;
            succ.push(edges);
        }
        r.finish()?;

        let mut r = ByteReader::new(
            snap.require_section(section::DEADLOCKS)?,
            section::DEADLOCKS,
        );
        let ndead = r.usize()?;
        let mut deadlocks = Vec::with_capacity(ndead.min(count));
        for _ in 0..ndead {
            let d = r.u32()? as usize;
            if d >= count || !expanded[d] {
                return Err(r.malformed("deadlock id out of range or unexpanded"));
            }
            deadlocks.push(StateId::new(d));
        }
        r.finish()?;

        let mut r = ByteReader::new(snap.require_section(section::COUNTERS)?, section::COUNTERS);
        let edge_count = r.usize()?;
        let elapsed = Duration::from_nanos(r.u64()?);
        r.finish()?;
        if edge_count < recorded {
            return Err(CheckpointError::Malformed {
                section: section::COUNTERS,
                detail: "edge count is below the number of recorded edges".into(),
            });
        }

        Ok(ReachabilityGraph {
            states,
            expanded,
            succ,
            initial: StateId::new(0),
            deadlocks,
            edge_count,
            elapsed,
            threads_used: 1,
        })
    }

    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of edges (fired transitions) in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Wall-clock exploration time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Exploration throughput in states per second — the perf counter the
    /// benchmark tables regress against.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// How many worker threads the exploration ran on.
    pub fn threads_used(&self) -> usize {
        self.threads_used
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The marking of state `s`.
    pub fn marking(&self, s: StateId) -> &Marking {
        &self.states[s.index()]
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl ExactSizeIterator<Item = StateId> + '_ {
        (0..self.states.len()).map(StateId::new)
    }

    /// Outgoing labelled edges of `s` (empty if edges were not recorded).
    pub fn successors(&self, s: StateId) -> &[(TransitionId, StateId)] {
        &self.succ[s.index()]
    }

    /// States with no enabled transition (deadlock / termination states).
    pub fn deadlocks(&self) -> &[StateId] {
        &self.deadlocks
    }

    /// `true` if some reachable state is dead.
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// Looks up the state id of a marking, if it is reachable.
    pub fn find(&self, m: &Marking) -> Option<StateId> {
        // Linear scan is acceptable for test-sized graphs; exploration keeps
        // its own hash index internally.
        self.states.iter().position(|s| s == m).map(StateId::new)
    }

    /// Checks whether a marking is reachable.
    pub fn contains(&self, m: &Marking) -> bool {
        self.find(m).is_some()
    }

    /// A shortest firing sequence from the initial state to `target`.
    ///
    /// Returns `None` if `target` is unreachable or edges were not recorded.
    pub fn path_to(&self, target: StateId) -> Option<Vec<TransitionId>> {
        if target == self.initial {
            return Some(Vec::new());
        }
        let mut pred: Vec<Option<(StateId, TransitionId)>> = vec![None; self.states.len()];
        let mut queue = std::collections::VecDeque::from([self.initial]);
        let mut seen = vec![false; self.states.len()];
        seen[self.initial.index()] = true;
        while let Some(s) = queue.pop_front() {
            for &(t, n) in self.successors(s) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    pred[n.index()] = Some((s, t));
                    if n == target {
                        let mut path = Vec::new();
                        let mut cur = n;
                        while let Some((p, tr)) = pred[cur.index()] {
                            path.push(tr);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Counts the distinct maximal firing sequences (interleavings) of an
    /// *acyclic* reachability graph — e.g. the `3! = 6` interleavings of the
    /// paper's Figure 1.
    ///
    /// Returns `None` if the graph contains a cycle (the count would be
    /// infinite) or edges were not recorded.
    pub fn count_maximal_paths(&self) -> Option<u128> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        fn visit(
            rg: &ReachabilityGraph,
            s: StateId,
            marks: &mut [Mark],
            memo: &mut [Option<u128>],
        ) -> Option<u128> {
            if let Some(v) = memo[s.index()] {
                return Some(v);
            }
            if marks[s.index()] == Mark::Grey {
                return None; // cycle
            }
            marks[s.index()] = Mark::Grey;
            let succs = rg.successors(s);
            let v = if succs.is_empty() {
                1
            } else {
                let mut sum: u128 = 0;
                for &(_, n) in succs {
                    sum += visit(rg, n, marks, memo)?;
                }
                sum
            };
            marks[s.index()] = Mark::Black;
            memo[s.index()] = Some(v);
            Some(v)
        }
        let mut marks = vec![Mark::White; self.states.len()];
        let mut memo = vec![None; self.states.len()];
        visit(self, self.initial, &mut marks, &mut memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// N independent place->transition->place strands, all marked.
    fn concurrent(n: usize) -> PetriNet {
        let mut b = NetBuilder::new("concurrent");
        for i in 0..n {
            let p = b.place_marked(format!("in{i}"));
            let q = b.place(format!("out{i}"));
            b.transition(format!("t{i}"), [p], [q]);
        }
        b.build().unwrap()
    }

    #[test]
    fn fig1_shape_eight_states_six_interleavings() {
        let rg = ReachabilityGraph::explore(&concurrent(3)).unwrap();
        assert_eq!(rg.state_count(), 8);
        assert_eq!(rg.edge_count(), 12); // 3*4 edges of the cube
        assert_eq!(rg.deadlocks().len(), 1);
        assert_eq!(rg.count_maximal_paths(), Some(6));
    }

    #[test]
    fn concurrency_scales_as_two_to_the_n() {
        for n in 1..=6 {
            let rg = ReachabilityGraph::explore(&concurrent(n)).unwrap();
            assert_eq!(rg.state_count(), 1 << n, "n={n}");
        }
    }

    #[test]
    fn cyclic_net_has_no_path_count() {
        let mut b = NetBuilder::new("cycle");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("go", [p], [q]);
        b.transition("back", [q], [p]);
        let net = b.build().unwrap();
        let rg = ReachabilityGraph::explore(&net).unwrap();
        assert_eq!(rg.state_count(), 2);
        assert!(!rg.has_deadlock());
        assert_eq!(rg.count_maximal_paths(), None);
    }

    #[test]
    fn deadlock_found_and_witnessed() {
        // classic 2-process deadlock: each grabs one of two shared resources
        let mut b = NetBuilder::new("deadlock");
        let r1 = b.place_marked("r1");
        let r2 = b.place_marked("r2");
        let a0 = b.place_marked("a0");
        let a1 = b.place("a1");
        let b0 = b.place_marked("b0");
        let b1 = b.place("b1");
        b.transition("a_take1", [a0, r1], [a1]);
        b.transition("a_take2", [a1, r2], [a0, r1, r2]);
        b.transition("b_take2", [b0, r2], [b1]);
        b.transition("b_take1", [b1, r1], [b0, r1, r2]);
        let net = b.build().unwrap();
        let rg = ReachabilityGraph::explore(&net).unwrap();
        assert!(rg.has_deadlock());
        let dead = rg.deadlocks()[0];
        let path = rg.path_to(dead).expect("deadlock reachable");
        // replaying the witness ends in the dead marking
        let m = net
            .fire_sequence(net.initial_marking(), path)
            .unwrap()
            .unwrap();
        assert_eq!(&m, rg.marking(dead));
        assert!(net.is_dead(&m));
    }

    #[test]
    fn state_limit_respected() {
        let net = concurrent(5);
        let opts = ExploreOptions {
            max_states: 10,
            record_edges: false,
            ..Default::default()
        };
        let err = ReachabilityGraph::explore_with(&net, &opts).unwrap_err();
        assert_eq!(err, NetError::StateLimit(10));
    }

    #[test]
    fn edges_can_be_skipped() {
        let net = concurrent(3);
        let opts = ExploreOptions {
            max_states: usize::MAX,
            record_edges: false,
            ..Default::default()
        };
        let rg = ReachabilityGraph::explore_with(&net, &opts).unwrap();
        assert_eq!(rg.state_count(), 8);
        assert!(rg.successors(rg.initial()).is_empty());
        assert_eq!(rg.edge_count(), 12, "edge count still tracked");
    }

    #[test]
    fn find_and_contains() {
        let net = concurrent(2);
        let rg = ReachabilityGraph::explore(&net).unwrap();
        assert!(rg.contains(net.initial_marking()));
        assert_eq!(rg.find(net.initial_marking()), Some(rg.initial()));
        let absent = Marking::empty(net.place_count());
        assert!(!rg.contains(&absent));
    }

    #[test]
    fn path_to_initial_is_empty() {
        let net = concurrent(2);
        let rg = ReachabilityGraph::explore(&net).unwrap();
        assert_eq!(rg.path_to(rg.initial()), Some(vec![]));
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        use crate::budget::Verdict;
        let net = concurrent(5);
        for threads in [1usize, 2] {
            let opts = ExploreOptions {
                threads,
                ..Default::default()
            };
            let reference = ReachabilityGraph::explore_bounded(&net, &opts, &Budget::default())
                .unwrap()
                .into_value();

            // interrupt at 10 states, snapshot, decode, resume
            let partial =
                ReachabilityGraph::explore_bounded(&net, &opts, &Budget::default().cap_states(10))
                    .unwrap();
            assert!(!partial.is_complete(), "threads={threads}");
            let snap = partial.value().to_snapshot(&net, true);
            let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            let resumed = ReachabilityGraph::explore_checkpointed(
                &net,
                &opts,
                &Budget::default(),
                &CheckpointConfig::default(),
                Some(&decoded),
            )
            .unwrap();
            assert!(resumed.is_complete(), "threads={threads}");
            let resumed = resumed.into_value();
            assert_eq!(resumed.state_count(), reference.state_count());
            assert_eq!(resumed.edge_count(), reference.edge_count());
            assert_eq!(resumed.deadlocks().len(), reference.deadlocks().len());
            use std::collections::BTreeSet;
            let ref_dead: BTreeSet<&Marking> = reference
                .deadlocks()
                .iter()
                .map(|&d| reference.marking(d))
                .collect();
            let res_dead: BTreeSet<&Marking> = resumed
                .deadlocks()
                .iter()
                .map(|&d| resumed.marking(d))
                .collect();
            assert_eq!(ref_dead, res_dead, "threads={threads}");
            assert_eq!(
                Verdict::from_observation(resumed.has_deadlock(), true, 0),
                Verdict::from_observation(reference.has_deadlock(), true, 0)
            );
        }
    }

    #[test]
    fn periodic_checkpoints_are_written_and_resumable() {
        let net = concurrent(5);
        let dir = std::env::temp_dir().join(format!("rg-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.ckpt");
        let opts = ExploreOptions::default();
        let out = ReachabilityGraph::explore_checkpointed(
            &net,
            &opts,
            &Budget::default(),
            &CheckpointConfig::periodic(&path, 5),
            None,
        )
        .unwrap();
        assert!(out.is_complete(), "periodic snapshots do not stop the run");
        assert_eq!(out.value().state_count(), 32);
        assert!(path.exists(), "mid-run snapshot was written");
        // the last snapshot resumes to the same complete result
        let snap = crate::checkpoint::read_checkpoint_with_fallback(&path).unwrap();
        let resumed = ReachabilityGraph::explore_checkpointed(
            &net,
            &opts,
            &Budget::default(),
            &CheckpointConfig::default(),
            Some(&snap),
        )
        .unwrap()
        .into_value();
        assert_eq!(resumed.state_count(), 32);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_for_wrong_net_is_rejected() {
        let net = concurrent(3);
        let other = concurrent(4);
        let rg = ReachabilityGraph::explore(&net).unwrap();
        let snap = rg.to_snapshot(&net, true);
        let err = ReachabilityGraph::from_snapshot(&other, &snap, true).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }));
        let err = ReachabilityGraph::from_snapshot(&net, &snap, false).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }));
    }

    #[test]
    fn unsafe_net_reported() {
        let mut b = NetBuilder::new("unsafe");
        let p = b.place_marked("p");
        let q = b.place_marked("q");
        let r = b.place("r");
        b.transition("t1", [p], [r]);
        b.transition("t2", [q], [r]);
        let net = b.build().unwrap();
        // firing t1 then t2 puts two tokens in r
        let err = ReachabilityGraph::explore(&net).unwrap_err();
        assert!(matches!(err, NetError::NotSafe { .. }));
    }
}
