//! Verdict-preserving structural net reduction (pre-pass).
//!
//! Shrinks a safe net *before* any engine explores it, attacking the state
//! explosion one layer earlier than partial-order or symbolic techniques:
//! a net with fewer places and transitions has exponentially fewer
//! interleavings for every engine downstream. The rules are the classical
//! Murata/Berthelot reductions, restricted to variants that preserve the
//! *deadlock verdict* of safe nets exactly (in the spirit of Khomenko &
//! Koutny's safe-net reduction):
//!
//! * **`dt` — dead transitions**: a transition that can never become
//!   enabled (some input place is never markable, or a P-invariant shows
//!   its input places can never hold enough tokens simultaneously) is
//!   removed. Reachable markings are untouched.
//! * **`rp` — redundant places**: duplicate places (same presets, postsets
//!   and initial marking as a sibling), constantly marked self-loop-only
//!   places, and sink places (empty postset) are removed. None of them
//!   ever constrains enabledness beyond what the remaining net encodes.
//! * **`it` — identity transitions**: a transition whose firing is a no-op
//!   (`•t = t•`) is removed *when a justifier exists* — another transition
//!   enabled whenever `t` is — so no dead marking is created by the removal.
//! * **`st` — fusion of series transitions**: a buffer place `p` with a
//!   unique producer `t1` and unique consumer `t2` (`•t2 = {p}`) collapses
//!   `t1; t2` into one transition, guarded by a P-invariant that makes the
//!   `t2`-early permutation sound.
//! * **`sp` — fusion of series places**: a silent transition `t` moving a
//!   token from `p` to `q` (`•t = {p}`, `t• = {q}`, `p• = {t}`) merges the
//!   two places, guarded by a P-invariant proving `m(p) + m(q) ≤ 1`.
//!
//! Rules run to a fixpoint. The pass returns the reduced net together with
//! a [`ReductionReport`] (per-rule application counts, sizes before/after)
//! and a [`ReductionMap`] that translates witness traces and markings on
//! the reduced net back to the original, so counterexamples stay replayable.
//! See DESIGN.md for the per-rule soundness arguments.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::ids::{PlaceId, TransitionId};
use crate::invariants::place_invariants_capped;
use crate::marking::Marking;
use crate::net::{NetBuilder, PetriNet};

/// Which reduction rules to run, plus resource guards.
///
/// # Examples
///
/// ```
/// use petri::reduce::ReduceOptions;
///
/// let all = ReduceOptions::default();
/// assert_eq!(all.rules_string(), "sp,st,rp,it,dt");
/// let some = ReduceOptions::parse("sp,dt").unwrap();
/// assert!(some.series_places && some.dead_transitions);
/// assert!(!some.series_transitions);
/// assert!(ReduceOptions::parse("bogus").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceOptions {
    /// Fuse series places (`sp`).
    pub series_places: bool,
    /// Fuse series transitions (`st`).
    pub series_transitions: bool,
    /// Remove redundant places (`rp`).
    pub redundant_places: bool,
    /// Remove justified identity transitions (`it`).
    pub identity_transitions: bool,
    /// Remove structurally dead transitions (`dt`).
    pub dead_transitions: bool,
    /// Skip P-invariant computation (and the rules that need it) on nets
    /// with more places than this: the Farkas algorithm can blow up.
    pub invariant_place_limit: usize,
    /// Cap on the Farkas work matrix while enumerating the guard
    /// invariants ([`place_invariants_capped`]): keeps the per-iteration
    /// cost of the pass bounded on nets whose minimal-invariant count
    /// explodes. Capping loses reductions, never soundness.
    ///
    /// [`place_invariants_capped`]: crate::place_invariants_capped
    pub invariant_row_limit: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            series_places: true,
            series_transitions: true,
            redundant_places: true,
            identity_transitions: true,
            dead_transitions: true,
            invariant_place_limit: 512,
            invariant_row_limit: 256,
        }
    }
}

impl ReduceOptions {
    /// All rules disabled (the pass becomes a no-op).
    pub fn none() -> Self {
        ReduceOptions {
            series_places: false,
            series_transitions: false,
            redundant_places: false,
            identity_transitions: false,
            dead_transitions: false,
            invariant_place_limit: 512,
            invariant_row_limit: 256,
        }
    }

    /// Parses a rule list like `"sp,st"`; `""` and `"all"` enable all rules.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first unknown rule.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.is_empty() || spec == "all" {
            return Ok(ReduceOptions::default());
        }
        let mut opts = ReduceOptions::none();
        for tok in spec.split(',') {
            match tok.trim() {
                "sp" => opts.series_places = true,
                "st" => opts.series_transitions = true,
                "rp" => opts.redundant_places = true,
                "it" => opts.identity_transitions = true,
                "dt" => opts.dead_transitions = true,
                other => {
                    return Err(format!(
                        "unknown reduction rule `{other}` (expected a comma list of sp, st, rp, it, dt, or `all`)"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Canonical comma list of the enabled rules (`"none"` if all disabled).
    pub fn rules_string(&self) -> String {
        let mut out = Vec::new();
        if self.series_places {
            out.push("sp");
        }
        if self.series_transitions {
            out.push("st");
        }
        if self.redundant_places {
            out.push("rp");
        }
        if self.identity_transitions {
            out.push("it");
        }
        if self.dead_transitions {
            out.push("dt");
        }
        if out.is_empty() {
            "none".into()
        } else {
            out.join(",")
        }
    }

    fn needs_invariants(&self) -> bool {
        self.series_places || self.series_transitions || self.dead_transitions
    }
}

/// The nodes a property observes, by name: the reduction must keep them
/// intact so the property still compiles against — and evaluates
/// faithfully on — the reduced net.
///
/// Place protection extends to the pre-places of every observed
/// transition (a `fireable(t)` atom reads exactly those markings), and
/// the fusion rules additionally refuse to merge *through* a protected
/// place, so no intermediate marking a property could distinguish is
/// erased (see DESIGN.md "Property-aware reduction guards").
///
/// Names that don't exist in the net are ignored here; the caller is
/// expected to have validated the property against the net first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observed {
    /// Names of places whose marking the property reads (`m(p) ⋈ k`).
    pub places: Vec<String>,
    /// Names of transitions whose enabledness the property reads
    /// (`fireable(t)`).
    pub transitions: Vec<String>,
}

impl Observed {
    /// Observes nothing: [`reduce_observed`] behaves exactly like
    /// [`reduce`].
    pub fn none() -> Self {
        Observed::default()
    }

    /// `true` when no node is observed.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty() && self.transitions.is_empty()
    }
}

/// Id-resolved protection masks for one intermediate net. Recomputed
/// after every surgery: names are stable across surgeries (surviving
/// nodes keep theirs) but ids are not.
struct Protected {
    places: Vec<bool>,
    transitions: Vec<bool>,
}

impl Protected {
    fn resolve(net: &PetriNet, observed: &Observed) -> Self {
        let mut places = vec![false; net.place_count()];
        let mut transitions = vec![false; net.transition_count()];
        for name in &observed.places {
            if let Some(p) = net.place_by_name(name) {
                places[p.index()] = true;
            }
        }
        for name in &observed.transitions {
            if let Some(t) = net.transition_by_name(name) {
                transitions[t.index()] = true;
                // fireable(t) is a function of t's pre-place markings
                for p in net.pre_places(t) {
                    places[p.index()] = true;
                }
            }
        }
        Protected {
            places,
            transitions,
        }
    }

    fn touches_protected_place(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.pre_places(t)
            .iter()
            .chain(net.post_places(t))
            .any(|p| self.places[p.index()])
    }
}

/// What a reduction pass did: sizes before/after and per-rule counts.
///
/// The `Display` impl renders the one-line summary used by the CLI:
/// `24p/20t -> 12p/9t (sp:3 st:4 rp:2 it:0 dt:2)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionReport {
    /// Places before the pass.
    pub places_before: usize,
    /// Transitions before the pass.
    pub transitions_before: usize,
    /// Places after the pass.
    pub places_after: usize,
    /// Transitions after the pass.
    pub transitions_after: usize,
    /// Series-place fusions applied (`sp`).
    pub series_places_fused: usize,
    /// Series-transition fusions applied (`st`).
    pub series_transitions_fused: usize,
    /// Redundant places removed (`rp`).
    pub redundant_places_removed: usize,
    /// Identity transitions removed (`it`).
    pub identity_transitions_removed: usize,
    /// Structurally dead transitions removed (`dt`).
    pub dead_transitions_removed: usize,
    /// Total rule applications (fixpoint iterations that changed the net).
    pub applications: usize,
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
}

impl ReductionReport {
    /// `true` if the pass changed nothing.
    pub fn is_noop(&self) -> bool {
        self.applications == 0
    }
}

impl fmt::Display for ReductionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}p/{}t -> {}p/{}t (sp:{} st:{} rp:{} it:{} dt:{})",
            self.places_before,
            self.transitions_before,
            self.places_after,
            self.transitions_after,
            self.series_places_fused,
            self.series_transitions_fused,
            self.redundant_places_removed,
            self.identity_transitions_removed,
            self.dead_transitions_removed,
        )
    }
}

/// How to restore the token of a removed place when lifting a marking.
#[derive(Debug, Clone)]
enum PlaceRestore {
    /// The place is constantly marked/unmarked in every reachable marking.
    Constant(bool),
    /// The place always carries the same token as this (surviving) sibling.
    Duplicate(PlaceId),
    /// A sink place: content not recoverable without a trace; restored to
    /// its initial value (deadness never depends on it).
    Sink(bool),
}

/// One rule application, from net `k` to net `k+1`.
#[derive(Debug, Clone)]
enum StepKind {
    /// Dead or identity transitions dropped. `dead` holds the ones that are
    /// provably dead in net `k` (identity removals are not claimed dead).
    RemoveTransitions {
        /// Net-`k` ids of the transitions removed as structurally dead.
        dead: Vec<TransitionId>,
    },
    /// Redundant places dropped, with per-place restoration info.
    RemovePlaces {
        restores: Vec<(PlaceId, PlaceRestore)>,
    },
    /// Series places `p`, `q` merged by deleting the silent transition
    /// (net-`k` id); the merged place lives in `q`'s slot.
    FusePlaces { silent: TransitionId },
    /// Series transitions `t1; t2` fused into `fused` (a net-`k+1` id,
    /// occupying `t1`'s slot); `second` is `t2`'s net-`k` id.
    FuseTransitions {
        fused: TransitionId,
        second: TransitionId,
    },
}

/// One layer of the reduction: the net it started from, the surviving-node
/// id maps, and what happened.
#[derive(Debug, Clone)]
struct Step {
    kind: StepKind,
    /// The net *before* this step (net `k`), used for replay-based lifting.
    net: PetriNet,
    /// Maps each net-`k+1` place to its net-`k` id.
    place_back: Vec<PlaceId>,
    /// Maps each net-`k+1` transition to its net-`k` id.
    transition_back: Vec<TransitionId>,
}

/// Translates traces and markings on the reduced net back to the original.
///
/// Produced by [`reduce`]; the reduced net's witnesses only make sense to a
/// user of the *original* net, so every engine result must pass through
/// here before being reported.
#[derive(Debug, Clone)]
pub struct ReductionMap {
    original: PetriNet,
    steps: Vec<Step>,
}

impl ReductionMap {
    /// The original (unreduced) net.
    pub fn original(&self) -> &PetriNet {
        &self.original
    }

    /// `true` if no rule applied: reduced ids are original ids.
    pub fn is_identity(&self) -> bool {
        self.steps.is_empty()
    }

    /// Lifts a firing sequence of the reduced net to one of the original
    /// net: fused series transitions expand to both originals in order and
    /// silent series-place moves are re-inserted where needed.
    ///
    /// Returns `Ok(None)` if the input is not a valid firing sequence of
    /// the reduced net (mirroring [`PetriNet::fire_sequence`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotSafe`] if a replay during lifting violates
    /// safeness — possible only if the original net is itself unsafe.
    pub fn lift_trace(
        &self,
        trace: &[TransitionId],
    ) -> Result<Option<Vec<TransitionId>>, NetError> {
        let mut cur = trace.to_vec();
        for step in self.steps.iter().rev() {
            match lower_trace(step, &cur)? {
                Some(lowered) => cur = lowered,
                None => return Ok(None),
            }
        }
        // the lifted sequence must fire on the original net — catches
        // inputs that were never valid reduced-net traces
        if self
            .original
            .fire_sequence(self.original.initial_marking(), cur.iter().copied())?
            .is_none()
        {
            return Ok(None);
        }
        Ok(Some(cur))
    }

    /// Lifts a marking of the reduced net to a marking of the original net.
    ///
    /// Exact for every rule except sink-place removal, whose token content
    /// is restored to its initial value (deadness never depends on a sink).
    /// For a marking reached by a known trace, prefer [`ReductionMap::replay`],
    /// which is exact everywhere.
    pub fn lift_marking(&self, m: &Marking) -> Marking {
        let mut cur = m.clone();
        for step in self.steps.iter().rev() {
            cur = lower_marking(step, &cur);
        }
        cur
    }

    /// Lifts a reduced-net dead-transition set to original-net ids. Sound:
    /// every returned transition is dead in the original net; silent and
    /// identity transitions removed by the pass are conservatively omitted.
    pub fn lift_dead_transitions(&self, dead: &[TransitionId]) -> Vec<TransitionId> {
        let mut cur = dead.to_vec();
        for step in self.steps.iter().rev() {
            let mut lowered: Vec<TransitionId> = cur
                .iter()
                .map(|&t| step.transition_back[t.index()])
                .collect();
            match &step.kind {
                StepKind::RemoveTransitions { dead } => lowered.extend(dead.iter().copied()),
                StepKind::FuseTransitions { fused, second } if cur.contains(fused) => {
                    lowered.push(*second);
                }
                _ => {}
            }
            lowered.sort_unstable();
            lowered.dedup();
            cur = lowered;
        }
        cur
    }

    /// Lifts a reduced-net trace and fires it on the original net,
    /// returning the (exact) original marking it reaches.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotSafe`] if the original net is unsafe along
    /// the lifted sequence.
    pub fn replay(&self, trace: &[TransitionId]) -> Result<Option<Marking>, NetError> {
        match self.lift_trace(trace)? {
            Some(lifted) => self
                .original
                .fire_sequence(self.original.initial_marking(), lifted),
            None => Ok(None),
        }
    }
}

/// Lowers a net-`k+1` trace to a net-`k` trace (one layer).
fn lower_trace(step: &Step, trace: &[TransitionId]) -> Result<Option<Vec<TransitionId>>, NetError> {
    match &step.kind {
        StepKind::RemoveTransitions { .. } | StepKind::RemovePlaces { .. } => Ok(Some(
            trace
                .iter()
                .map(|&t| step.transition_back[t.index()])
                .collect(),
        )),
        StepKind::FuseTransitions { fused, second } => {
            let mut out = Vec::with_capacity(trace.len() * 2);
            for &t in trace {
                out.push(step.transition_back[t.index()]);
                if t == *fused {
                    out.push(*second);
                }
            }
            Ok(Some(out))
        }
        StepKind::FusePlaces { silent } => {
            // Replay on net k, inserting the silent move whenever the next
            // transition needs the token on the far side of the fused pair,
            // and once more at the end so the final marking is
            // silent-stable (otherwise it would not be dead: the silent
            // transition itself would be enabled).
            let net = &step.net;
            let mut m = net.initial_marking().clone();
            let mut out = Vec::with_capacity(trace.len() + 4);
            for &t in trace {
                let t_k = step.transition_back[t.index()];
                if !net.enabled(t_k, &m) && net.enabled(*silent, &m) {
                    m = net.fire(*silent, &m)?;
                    out.push(*silent);
                }
                if !net.enabled(t_k, &m) {
                    return Ok(None);
                }
                m = net.fire(t_k, &m)?;
                out.push(t_k);
            }
            if net.enabled(*silent, &m) {
                out.push(*silent);
            }
            Ok(Some(out))
        }
    }
}

/// Lowers a net-`k+1` marking to a net-`k` marking (one layer).
fn lower_marking(step: &Step, m: &Marking) -> Marking {
    let mut out = Marking::empty(step.net.place_count());
    for (new, &old) in step.place_back.iter().enumerate() {
        if m.is_marked(PlaceId::new(new)) {
            out.add_token(old);
        }
    }
    if let StepKind::RemovePlaces { restores } = &step.kind {
        for (p, restore) in restores {
            let marked = match restore {
                PlaceRestore::Constant(v) | PlaceRestore::Sink(v) => *v,
                PlaceRestore::Duplicate(of) => out.is_marked(*of),
            };
            if marked {
                out.add_token(*p);
            }
        }
    }
    // FusePlaces / FuseTransitions: the removed place stays empty, which is
    // exactly the silent-stable (respectively between-firings) position.
    out
}

/// Result of a reduction pass.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced net (equal to the input if nothing applied).
    pub net: PetriNet,
    /// Back-translation of traces and markings to the original net.
    pub map: ReductionMap,
    /// What was done.
    pub report: ReductionReport,
}

/// Runs the enabled reduction rules on `net` to a fixpoint.
///
/// The input must be a safe net (the whole tool's domain); every rule then
/// preserves the deadlock verdict exactly, and the returned
/// [`ReductionMap`] lifts reduced-net witnesses to original-net witnesses.
///
/// # Errors
///
/// Returns [`NetError`] only if rebuilding an intermediate net fails,
/// which cannot happen for nets produced by [`NetBuilder`].
///
/// # Examples
///
/// ```
/// use petri::reduce::{reduce, ReduceOptions};
/// use petri::NetBuilder;
///
/// // a 3-place pipeline collapses to a single place
/// let mut b = NetBuilder::new("pipe");
/// let p0 = b.place_marked("p0");
/// let p1 = b.place("p1");
/// let p2 = b.place("p2");
/// b.transition("a", [p0], [p1]);
/// b.transition("b", [p1], [p2]);
/// let red = reduce(&b.build()?, &ReduceOptions::default())?;
/// assert!(red.net.place_count() < 3);
/// assert!(!red.report.is_noop());
/// # Ok::<(), petri::NetError>(())
/// ```
pub fn reduce(net: &PetriNet, opts: &ReduceOptions) -> Result<Reduction, NetError> {
    reduce_observed(net, opts, &Observed::none())
}

/// Like [`reduce`], but keeps every node in `observed` (and every
/// pre-place of an observed transition) intact, so a property reading
/// those nodes evaluates identically on the original and reduced nets.
///
/// With an empty `observed` this is exactly [`reduce`].
///
/// # Errors
///
/// Returns [`NetError`] only if rebuilding an intermediate net fails,
/// which cannot happen for nets produced by [`NetBuilder`].
pub fn reduce_observed(
    net: &PetriNet,
    opts: &ReduceOptions,
    observed: &Observed,
) -> Result<Reduction, NetError> {
    let start = Instant::now();
    let mut report = ReductionReport {
        places_before: net.place_count(),
        transitions_before: net.transition_count(),
        places_after: net.place_count(),
        transitions_after: net.transition_count(),
        series_places_fused: 0,
        series_transitions_fused: 0,
        redundant_places_removed: 0,
        identity_transitions_removed: 0,
        dead_transitions_removed: 0,
        applications: 0,
        elapsed: Duration::ZERO,
    };
    let mut current = net.clone();
    let mut steps = Vec::new();

    // Guard invariants are expensive (Farkas elimination), so they are
    // computed once and *carried* across surgeries — each application
    // keeps exactly the invariants it provably preserves, remapped to the
    // new place ids. The carried set can miss invariants that only exist
    // on the smaller net, so when it stops yielding applications we
    // recompute from scratch once (`stale`) before declaring a fixpoint.
    let compute_invariants = |net: &PetriNet| {
        if opts.needs_invariants()
            && net.place_count() <= opts.invariant_place_limit
            && net.place_count() > 0
        {
            place_invariants_capped(net, opts.invariant_row_limit)
        } else {
            Vec::new()
        }
    };
    let mut invariants = compute_invariants(&current);
    let mut stale = false;

    loop {
        // ids shift with every surgery, so the protection masks are
        // re-resolved from the stable names each round
        let prot = Protected::resolve(&current, observed);
        // rp runs last: removing a sink place can destroy the P-invariants
        // that guard sp/st, so the fusions get their chance first.
        let find_guarded = |current: &PetriNet, invariants: &[Vec<i64>], prot: &Protected| {
            if opts.dead_transitions {
                find_dead_transitions(current, invariants, prot)
            } else {
                None
            }
            .or_else(|| {
                if opts.identity_transitions {
                    find_identity_transition(current, prot)
                } else {
                    None
                }
            })
            .or_else(|| {
                if opts.series_transitions {
                    find_series_transition(current, invariants, prot)
                } else {
                    None
                }
            })
            .or_else(|| {
                if opts.series_places {
                    find_series_place(current, invariants, prot)
                } else {
                    None
                }
            })
        };

        let mut application = find_guarded(&current, &invariants, &prot);
        if application.is_none() && stale {
            // the carried set can miss invariants of the smaller net:
            // refresh it before conceding priority to rp, which would
            // destroy exactly the invariants the fusions are waiting for
            invariants = compute_invariants(&current);
            application = find_guarded(&current, &invariants, &prot);
        }
        if application.is_none() && opts.redundant_places {
            application = find_redundant_places(&current, &prot);
        }

        let Some(app) = application else { break };
        let (next, place_back, transition_back) = apply_surgery(&current, &app.surgery)?;
        invariants = carry_invariants(&invariants, &app.surgery, &place_back);
        stale = true;
        let kind = match app.pending {
            PendingKind::RemoveTransitions { dead } => {
                report.dead_transitions_removed += dead.len();
                let identity = dead.is_empty();
                if identity {
                    report.identity_transitions_removed += 1;
                }
                StepKind::RemoveTransitions { dead }
            }
            PendingKind::RemovePlaces { restores } => {
                report.redundant_places_removed += restores.len();
                StepKind::RemovePlaces { restores }
            }
            PendingKind::FusePlaces { silent } => {
                report.series_places_fused += 1;
                StepKind::FusePlaces { silent }
            }
            PendingKind::FuseTransitions { first, second } => {
                report.series_transitions_fused += 1;
                let fused = transition_back
                    .iter()
                    .position(|&t| t == first)
                    .map(TransitionId::new)
                    .expect("the fused transition survives in t1's slot");
                StepKind::FuseTransitions { fused, second }
            }
        };
        steps.push(Step {
            kind,
            net: current,
            place_back,
            transition_back,
        });
        current = next;
        report.applications += 1;
    }

    report.places_after = current.place_count();
    report.transitions_after = current.transition_count();
    report.elapsed = start.elapsed();
    Ok(Reduction {
        net: current,
        map: ReductionMap {
            original: net.clone(),
            steps,
        },
        report,
    })
}

/// Filters the guard invariants to those a surgery provably preserves and
/// remaps them to the new net's place ids.
///
/// An old invariant `x` stays valid when every dropped place carries no
/// information the smaller net loses: a place fused into `q` (series-place
/// fusion redirects its producers there) needs `x[p] == x[q]` — the fused
/// place then accounts for both token counts — and any other dropped
/// place needs weight zero. Dropping *transitions* only removes columns of
/// the incidence constraint, so every invariant survives that
/// unconditionally.
fn carry_invariants(
    invariants: &[Vec<i64>],
    surgery: &Surgery,
    place_back: &[PlaceId],
) -> Vec<Vec<i64>> {
    invariants
        .iter()
        .filter(|x| {
            surgery
                .drop_places
                .iter()
                .all(|&d| match surgery.redirect_place.get(&d) {
                    Some(&q) => x[d] == x[q],
                    None => x[d] == 0,
                })
        })
        .map(|x| place_back.iter().map(|&old| x[old.index()]).collect())
        .collect()
}

/// Net surgery: nodes to drop plus arc rewrites, applied via [`NetBuilder`].
#[derive(Debug, Default)]
struct Surgery {
    drop_places: Vec<usize>,
    drop_transitions: Vec<usize>,
    /// Substitute references to a dropped place by a surviving one
    /// (series-place fusion: producers of `p` now produce `q`).
    redirect_place: HashMap<usize, usize>,
    /// Replace a surviving transition's arcs wholesale (series-transition
    /// fusion rewrites `t1`).
    override_arcs: HashMap<usize, (Vec<usize>, Vec<usize>)>,
    /// Override the initial marking of a surviving place.
    mark_override: HashMap<usize, bool>,
}

/// A found rule application, before the rebuilt net exists.
struct Application {
    surgery: Surgery,
    pending: PendingKind,
}

/// Like [`StepKind`] but before new-net ids are known.
enum PendingKind {
    RemoveTransitions {
        dead: Vec<TransitionId>,
    },
    RemovePlaces {
        restores: Vec<(PlaceId, PlaceRestore)>,
    },
    FusePlaces {
        silent: TransitionId,
    },
    /// `first`/`second` are net-`k` ids of `t1`/`t2`.
    FuseTransitions {
        first: TransitionId,
        second: TransitionId,
    },
}

fn apply_surgery(
    net: &PetriNet,
    s: &Surgery,
) -> Result<(PetriNet, Vec<PlaceId>, Vec<TransitionId>), NetError> {
    let mut dropped_place = vec![false; net.place_count()];
    for &p in &s.drop_places {
        dropped_place[p] = true;
    }
    let mut dropped_transition = vec![false; net.transition_count()];
    for &t in &s.drop_transitions {
        dropped_transition[t] = true;
    }

    let mut b = NetBuilder::new(net.name());
    let mut place_back = Vec::new();
    let mut new_place = vec![None; net.place_count()];
    for p in net.places() {
        if dropped_place[p.index()] {
            continue;
        }
        let marked = s
            .mark_override
            .get(&p.index())
            .copied()
            .unwrap_or_else(|| net.initial_marking().is_marked(p));
        let id = if marked {
            b.place_marked(net.place_name(p))
        } else {
            b.place(net.place_name(p))
        };
        new_place[p.index()] = Some(id);
        place_back.push(p);
    }

    let map_arcs = |old: &[usize]| -> Vec<PlaceId> {
        let mut out = Vec::with_capacity(old.len());
        for &p in old {
            let p = *s.redirect_place.get(&p).unwrap_or(&p);
            if let Some(id) = new_place[p] {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    };

    let mut transition_back = Vec::new();
    for t in net.transitions() {
        if dropped_transition[t.index()] {
            continue;
        }
        let (pre, post): (Vec<usize>, Vec<usize>) = match s.override_arcs.get(&t.index()) {
            Some((pre, post)) => (pre.clone(), post.clone()),
            None => (
                net.pre_places(t).iter().map(|p| p.index()).collect(),
                net.post_places(t).iter().map(|p| p.index()).collect(),
            ),
        };
        b.transition(net.transition_name(t), map_arcs(&pre), map_arcs(&post));
        transition_back.push(t);
    }

    Ok((b.build()?, place_back, transition_back))
}

/// `dt`: transitions that can never fire — an input place is never
/// markable (least-fixpoint over the flow relation), or a P-invariant
/// caps the tokens their input places can ever hold simultaneously.
fn find_dead_transitions(
    net: &PetriNet,
    invariants: &[Vec<i64>],
    prot: &Protected,
) -> Option<Application> {
    let place_count = net.place_count();
    let mut markable: Vec<bool> = (0..place_count)
        .map(|p| net.initial_marking().is_marked(PlaceId::new(p)))
        .collect();
    loop {
        let mut changed = false;
        for t in net.transitions() {
            if net.pre_places(t).iter().all(|p| markable[p.index()]) {
                for q in net.post_places(t) {
                    if !markable[q.index()] {
                        markable[q.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let m0_weight = |x: &[i64]| -> i64 {
        net.initial_marking()
            .places()
            .map(|p| x[p.index()])
            .sum::<i64>()
    };

    let mut dead = Vec::new();
    for t in net.transitions() {
        // an observed transition must survive so `fireable(t)` still
        // compiles (a dead one just evaluates to constant false)
        if prot.transitions[t.index()] {
            continue;
        }
        let unmarkable = net.pre_places(t).iter().any(|p| !markable[p.index()]);
        let over_capacity = !unmarkable
            && invariants.iter().any(|x| {
                let need: i64 = net.pre_places(t).iter().map(|p| x[p.index()]).sum();
                need > m0_weight(x)
            });
        if unmarkable || over_capacity {
            dead.push(t);
        }
    }
    if dead.is_empty() {
        return None;
    }
    Some(Application {
        surgery: Surgery {
            drop_transitions: dead.iter().map(|t| t.index()).collect(),
            ..Default::default()
        },
        pending: PendingKind::RemoveTransitions { dead },
    })
}

/// `rp`: duplicate, constantly-marked self-loop-only, and sink places.
fn find_redundant_places(net: &PetriNet, prot: &Protected) -> Option<Application> {
    let mut restores: Vec<(PlaceId, PlaceRestore)> = Vec::new();
    let mut dropped = vec![false; net.place_count()];
    for p in net.places() {
        if prot.places[p.index()] {
            continue;
        }
        let marked0 = net.initial_marking().is_marked(p);
        let pre = sorted(net.pre_transitions(p));
        let post = sorted(net.post_transitions(p));
        // constant: every arc is a self-loop, token present from the start
        if marked0 && pre == post && !pre.is_empty() {
            restores.push((p, PlaceRestore::Constant(true)));
            dropped[p.index()] = true;
            continue;
        }
        // sink: gates nothing (includes isolated places)
        if post.is_empty() {
            let restore = if pre.is_empty() {
                PlaceRestore::Constant(marked0)
            } else {
                PlaceRestore::Sink(marked0)
            };
            restores.push((p, restore));
            dropped[p.index()] = true;
        }
    }
    // duplicates: keep the smallest surviving sibling
    for q in net.places() {
        if dropped[q.index()] || prot.places[q.index()] {
            continue;
        }
        for p in net.places().take_while(|p| p.index() < q.index()) {
            if dropped[p.index()] {
                continue;
            }
            if net.initial_marking().is_marked(p) == net.initial_marking().is_marked(q)
                && sorted(net.pre_transitions(p)) == sorted(net.pre_transitions(q))
                && sorted(net.post_transitions(p)) == sorted(net.post_transitions(q))
            {
                restores.push((q, PlaceRestore::Duplicate(p)));
                dropped[q.index()] = true;
                break;
            }
        }
    }
    if restores.is_empty() {
        return None;
    }
    Some(Application {
        surgery: Surgery {
            drop_places: restores.iter().map(|(p, _)| p.index()).collect(),
            ..Default::default()
        },
        pending: PendingKind::RemovePlaces { restores },
    })
}

/// `it`: one no-op transition (`•t = t•`) with a justifier `u ≠ t` enabled
/// whenever `t` is, so the removal cannot create a dead marking.
fn find_identity_transition(net: &PetriNet, prot: &Protected) -> Option<Application> {
    for t in net.transitions() {
        // firing t never changes the marking, so only t's own
        // observability matters
        if prot.transitions[t.index()] {
            continue;
        }
        if net.pre_place_set(t) != net.post_place_set(t) {
            continue;
        }
        let justified = net
            .transitions()
            .any(|u| u != t && net.pre_place_set(u).is_subset(net.pre_place_set(t)));
        if !justified {
            continue;
        }
        return Some(Application {
            surgery: Surgery {
                drop_transitions: vec![t.index()],
                ..Default::default()
            },
            pending: PendingKind::RemoveTransitions { dead: vec![] },
        });
    }
    None
}

/// `st`: a buffer place `p` with unique producer `t1` and unique consumer
/// `t2` (`•t2 = {p}`, `m₀(p) = 0`) fuses `t1; t2`. When `t2` produces
/// tokens, a P-invariant must pin `p` and all of `t2•` to a single shared
/// token, which makes firing `t2` immediately after `t1` always possible
/// and safe (see DESIGN.md).
fn find_series_transition(
    net: &PetriNet,
    invariants: &[Vec<i64>],
    prot: &Protected,
) -> Option<Application> {
    for p in net.places() {
        if net.initial_marking().is_marked(p) || prot.places[p.index()] {
            continue;
        }
        let [t1] = net.pre_transitions(p) else {
            continue;
        };
        let [t2] = net.post_transitions(p) else {
            continue;
        };
        let (t1, t2) = (*t1, *t2);
        // fusing t1;t2 erases the marking between the two firings — refuse
        // whenever a property could tell that intermediate state apart
        if prot.transitions[t1.index()]
            || prot.transitions[t2.index()]
            || prot.touches_protected_place(net, t1)
            || prot.touches_protected_place(net, t2)
        {
            continue;
        }
        if t1 == t2
            || net.pre_places(t2) != std::slice::from_ref(&p)
            || net.pre_place_set(t1).contains(p.index())
            || net.post_place_set(t2).contains(p.index())
            || !net.post_place_set(t1).is_disjoint(net.post_place_set(t2))
        {
            continue;
        }
        if !net.post_places(t2).is_empty() {
            let guarded = invariants.iter().any(|x| {
                x[p.index()] >= 1
                    && net.post_places(t2).iter().all(|q| x[q.index()] >= 1)
                    && net
                        .initial_marking()
                        .places()
                        .map(|s| x[s.index()])
                        .sum::<i64>()
                        == 1
            });
            if !guarded {
                continue;
            }
        }
        let pre: Vec<usize> = net.pre_places(t1).iter().map(|q| q.index()).collect();
        let post: Vec<usize> = net
            .post_places(t1)
            .iter()
            .filter(|&&q| q != p)
            .chain(net.post_places(t2).iter())
            .map(|q| q.index())
            .collect();
        let mut surgery = Surgery {
            drop_places: vec![p.index()],
            drop_transitions: vec![t2.index()],
            ..Default::default()
        };
        surgery.override_arcs.insert(t1.index(), (pre, post));
        return Some(Application {
            surgery,
            pending: PendingKind::FuseTransitions {
                first: t1,
                second: t2,
            },
        });
    }
    None
}

/// `sp`: a silent transition `t : p -> q` whose input place has no other
/// consumer merges `p` into `q`, guarded by a P-invariant proving
/// `m(p) + m(q) ≤ 1` (so the merged place stays safe and the verdict is
/// preserved by firing `t` eagerly; see DESIGN.md).
fn find_series_place(
    net: &PetriNet,
    invariants: &[Vec<i64>],
    prot: &Protected,
) -> Option<Application> {
    for t in net.transitions() {
        let [p] = net.pre_places(t) else { continue };
        let [q] = net.post_places(t) else { continue };
        let (p, q) = (*p, *q);
        // merging p into q conflates `m(p)` with `m(q)`; a property
        // reading either place (or firing of t itself) must see them apart
        if prot.transitions[t.index()] || prot.places[p.index()] || prot.places[q.index()] {
            continue;
        }
        if p == q || net.post_transitions(p) != std::slice::from_ref(&t) {
            continue;
        }
        // a shared producer of p and q could double-mark the merged place
        let shared_producer = net
            .pre_transitions(p)
            .iter()
            .any(|u| net.pre_transitions(q).contains(u));
        if shared_producer {
            continue;
        }
        let guarded = invariants.iter().any(|x| {
            x[p.index()] >= 1
                && x[q.index()] >= 1
                && net
                    .initial_marking()
                    .places()
                    .map(|s| x[s.index()])
                    .sum::<i64>()
                    == 1
        });
        if !guarded {
            continue;
        }
        let mut surgery = Surgery {
            drop_places: vec![p.index()],
            drop_transitions: vec![t.index()],
            ..Default::default()
        };
        surgery.redirect_place.insert(p.index(), q.index());
        let merged_marked =
            net.initial_marking().is_marked(p) || net.initial_marking().is_marked(q);
        surgery.mark_override.insert(q.index(), merged_marked);
        return Some(Application {
            surgery,
            pending: PendingKind::FusePlaces { silent: t },
        });
    }
    None
}

fn sorted(ids: &[TransitionId]) -> Vec<TransitionId> {
    let mut v = ids.to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify;

    fn all() -> ReduceOptions {
        ReduceOptions::default()
    }

    fn only(spec: &str) -> ReduceOptions {
        ReduceOptions::parse(spec).unwrap()
    }

    /// Verdict equivalence + witness replay: the workhorse assertion.
    fn check_equivalent(net: &PetriNet, opts: &ReduceOptions) -> Reduction {
        let red = reduce(net, opts).unwrap();
        let orig = verify(net).unwrap();
        let reduced = verify(&red.net).unwrap();
        assert_eq!(
            orig.has_deadlock,
            reduced.has_deadlock,
            "verdict flipped on {}",
            net.name()
        );
        if let Some(trace) = &reduced.deadlock_witness {
            let lifted = red.map.lift_trace(trace).unwrap().expect("trace lifts");
            let m = net
                .fire_sequence(net.initial_marking(), lifted)
                .unwrap()
                .expect("lifted witness fires on the original");
            assert!(net.is_dead(&m), "lifted witness not dead on the original");
        }
        red
    }

    fn pipeline(n: usize) -> PetriNet {
        let mut b = NetBuilder::new("pipeline");
        let mut prev = b.place_marked("p0");
        for i in 1..=n {
            let next = b.place(format!("p{i}"));
            b.transition(format!("t{i}"), [prev], [next]);
            prev = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn parse_and_rules_string_round_trip() {
        assert_eq!(ReduceOptions::parse("all").unwrap(), all());
        assert_eq!(ReduceOptions::parse("").unwrap(), all());
        let o = only("st,dt");
        assert_eq!(o.rules_string(), "st,dt");
        assert_eq!(ReduceOptions::none().rules_string(), "none");
        assert!(ReduceOptions::parse("sp,xx").is_err());
    }

    #[test]
    fn pipeline_collapses_and_witness_lifts() {
        let net = pipeline(6);
        let red = check_equivalent(&net, &all());
        assert!(red.net.place_count() <= 2, "pipeline should collapse");
        assert!(red.report.series_places_fused + red.report.series_transitions_fused > 0);
        // dead end of the pipeline stays a deadlock, with a full-length witness
        let reduced = verify(&red.net).unwrap();
        assert!(reduced.has_deadlock);
        let lifted = red
            .map
            .lift_trace(&reduced.deadlock_witness.unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(lifted.len(), 6, "all six original steps reappear");
    }

    #[test]
    fn observed_place_survives_a_collapsing_reduction() {
        // unobserved, the pipeline collapses to (almost) nothing …
        let net = pipeline(6);
        let plain = reduce(&net, &all()).unwrap();
        assert!(
            plain.net.place_by_name("p3").is_none(),
            "baseline collapses p3"
        );
        // … observing p3 pins it, and the verdict still matches
        let obs = Observed {
            places: vec!["p3".into()],
            transitions: vec![],
        };
        let red = reduce_observed(&net, &all(), &obs).unwrap();
        assert!(red.net.place_by_name("p3").is_some(), "observed place kept");
        let orig = verify(&net).unwrap();
        let reduced = verify(&red.net).unwrap();
        assert_eq!(orig.has_deadlock, reduced.has_deadlock);
        // the observed marking is still expressible: some reachable
        // reduced marking marks p3, as in the original
        let p3 = red.net.place_by_name("p3").unwrap();
        let rg = crate::ReachabilityGraph::explore(&red.net).unwrap();
        assert!(
            rg.states().any(|s| rg.marking(s).is_marked(p3)),
            "p3 is still reachably marked after reduction"
        );
    }

    #[test]
    fn observed_transition_keeps_itself_and_its_pre_places() {
        let net = pipeline(6);
        let obs = Observed {
            places: vec![],
            transitions: vec!["t4".into()],
        };
        let red = reduce_observed(&net, &all(), &obs).unwrap();
        let t4 = red
            .net
            .transition_by_name("t4")
            .expect("observed transition kept");
        // fireable(t4) reads exactly t4's pre-places: they survive too
        assert!(
            !red.net.pre_places(t4).is_empty(),
            "pre-places of an observed transition survive"
        );
        assert!(
            red.net.place_by_name("p3").is_some(),
            "t4's pre-place p3 kept"
        );
    }

    #[test]
    fn empty_observed_set_reduces_byte_identically_to_reduce() {
        for net in [pipeline(6), crate::parse_net(SCHEDULER_LIKE).unwrap()] {
            let plain = reduce(&net, &all()).unwrap();
            let observed = reduce_observed(&net, &all(), &Observed::none()).unwrap();
            assert_eq!(crate::to_text(&plain.net), crate::to_text(&observed.net));
            // the Display summary covers sizes and per-rule counts
            // (the report itself differs in its wall-clock field)
            assert_eq!(plain.report.to_string(), observed.report.to_string());
        }
    }

    /// A small branching net for the empty-observed identity check.
    const SCHEDULER_LIKE: &str = "net branchy\npl a *\npl b\npl c\npl d\n\
        tr go1 : a -> b\ntr go2 : a -> c\ntr j1 : b -> d\ntr j2 : c -> d\n";

    #[test]
    fn reduction_is_a_fixpoint() {
        for net in [pipeline(5), {
            let mut b = NetBuilder::new("cycle");
            let p = b.place_marked("p");
            let q = b.place("q");
            b.transition("go", [p], [q]);
            b.transition("back", [q], [p]);
            b.build().unwrap()
        }] {
            let once = reduce(&net, &all()).unwrap();
            let twice = reduce(&once.net, &all()).unwrap();
            assert!(twice.report.is_noop(), "second pass must change nothing");
            assert_eq!(
                once.net.fingerprint(),
                twice.net.fingerprint(),
                "fixpoint net is stable"
            );
        }
    }

    #[test]
    fn series_transition_witness_expands_in_order() {
        // a -> t1 -> buf -> t2 -> b, then stuck: the reduced witness is a
        // single fused firing that must expand to [t1, t2].
        let mut b = NetBuilder::new("fst");
        let a = b.place_marked("a");
        let buf = b.place("buf");
        let end = b.place("end");
        b.transition("t1", [a], [buf]);
        b.transition("t2", [buf], [end]);
        let net = b.build().unwrap();
        let red = reduce(&net, &only("st")).unwrap();
        assert_eq!(red.report.series_transitions_fused, 1);
        assert_eq!(red.net.transition_count(), 1);
        let reduced = verify(&red.net).unwrap();
        let lifted = red
            .map
            .lift_trace(&reduced.deadlock_witness.unwrap())
            .unwrap()
            .unwrap();
        let names: Vec<&str> = lifted.iter().map(|&t| net.transition_name(t)).collect();
        assert_eq!(
            names,
            ["t1", "t2"],
            "fused firing expands to both, in order"
        );
        check_equivalent(&net, &only("st"));
    }

    #[test]
    fn series_place_witness_inserts_silent_move() {
        // w: a -> p, silent: p -> q, u: q -> end. Reducing sp merges p into
        // q; the reduced witness [w, u] must lift to [w, silent, u].
        let mut b = NetBuilder::new("fsp");
        let a = b.place_marked("a");
        let p = b.place("p");
        let q = b.place("q");
        let end = b.place("end");
        b.transition("w", [a], [p]);
        b.transition("silent", [p], [q]);
        b.transition("u", [q], [end]);
        let net = b.build().unwrap();
        let red = reduce(&net, &only("sp")).unwrap();
        assert!(red.report.series_places_fused >= 1);
        let reduced = verify(&red.net).unwrap();
        let lifted = red
            .map
            .lift_trace(&reduced.deadlock_witness.unwrap())
            .unwrap()
            .unwrap();
        let names: Vec<&str> = lifted.iter().map(|&t| net.transition_name(t)).collect();
        assert_eq!(names, ["w", "silent", "u"]);
        check_equivalent(&net, &only("sp"));
    }

    #[test]
    fn series_place_stabilizes_trailing_silent_move() {
        // the token parks in p at the end: the lift must append the silent
        // move, otherwise the lifted marking is not dead (silent is enabled).
        let mut b = NetBuilder::new("fsp-tail");
        let a = b.place_marked("a");
        let p = b.place("p");
        let q = b.place("q");
        b.transition("w", [a], [p]);
        b.transition("silent", [p], [q]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("sp"));
        assert!(red.report.series_places_fused >= 1);
        let reduced = verify(&red.net).unwrap();
        let lifted = red
            .map
            .lift_trace(&reduced.deadlock_witness.unwrap())
            .unwrap()
            .unwrap();
        let names: Vec<&str> = lifted.iter().map(|&t| net.transition_name(t)).collect();
        assert_eq!(names, ["w", "silent"], "trailing silent move appended");
    }

    #[test]
    fn duplicate_place_removed_and_marking_lifts_exactly() {
        let mut b = NetBuilder::new("dup");
        let p = b.place_marked("p");
        let twin = b.place_marked("twin");
        let q = b.place("q");
        b.transition("t", [p, twin], [q]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("rp"));
        // the twin is removed as a duplicate; q additionally falls as a sink
        assert_eq!(red.report.redundant_places_removed, 2);
        let reduced = verify(&red.net).unwrap();
        let lifted = red
            .map
            .lift_marking(reduced.deadlock_marking.as_ref().unwrap());
        // after t fires the twin must be restored as unmarked, like p
        assert!(!lifted.is_marked(p));
        assert!(!lifted.is_marked(twin));
        assert!(lifted.is_marked(q) || red.net.place_count() < 3);
    }

    #[test]
    fn constant_place_removed() {
        let mut b = NetBuilder::new("const");
        let always = b.place_marked("always");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("t", [p, always], [q, always]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("rp"));
        assert!(red.report.redundant_places_removed >= 1);
        assert!(red.net.place_by_name("always").is_none());
        let reduced = verify(&red.net).unwrap();
        let lifted = red
            .map
            .lift_marking(reduced.deadlock_marking.as_ref().unwrap());
        assert!(lifted.is_marked(always), "constant restored as marked");
    }

    #[test]
    fn sink_place_removed_without_changing_verdict() {
        let mut b = NetBuilder::new("sink");
        let p = b.place_marked("p");
        let q = b.place("q");
        let log = b.place("log");
        b.transition("t", [p], [q, log]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("rp"));
        assert!(red.net.place_by_name("log").is_none());
    }

    #[test]
    fn identity_transition_needs_justifier() {
        // skip: t's firing is a no-op, and u (same preset) justifies it
        let mut b = NetBuilder::new("ident");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("skip", [p], [p]);
        b.transition("u", [p], [q]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("it"));
        assert_eq!(red.report.identity_transitions_removed, 1);

        // without a justifier the no-op must stay: removing it would turn a
        // live net into a deadlocked one
        let mut b = NetBuilder::new("ident-alone");
        let p = b.place_marked("p");
        b.transition("spin", [p], [p]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("it"));
        assert!(red.report.is_noop(), "unjustified identity kept");
    }

    #[test]
    fn dead_transitions_removed_by_fixpoint_and_invariant() {
        // token-conserving so the capacity invariant survives: weights
        // p:1 q:1 never:1 x:1 pq2:2 form a P-invariant with m0-weight 1.
        let mut b = NetBuilder::new("dead");
        let p = b.place_marked("p");
        let q = b.place("q");
        let never = b.place("never");
        let x = b.place("x");
        let pq2 = b.place("pq2");
        b.transition("t", [p], [q]);
        b.transition("tb", [q], [p]);
        // unmarkable input: `never` has no producer
        b.transition("d1", [never], [q]);
        // chained: x is only markable through the unmarkable `never`
        b.transition("feed", [never], [x]);
        b.transition("d2", [x], [never]);
        // invariant capacity: p and q share one token, yet d3 needs both
        b.transition("d3", [p, q], [pq2]);
        let net = b.build().unwrap();
        let red = check_equivalent(&net, &only("dt"));
        assert_eq!(red.report.dead_transitions_removed, 4);
        assert_eq!(red.net.transition_count(), 2, "only t and tb stay");
        // the lifted dead set names every removed original transition
        let reduced = verify(&red.net).unwrap();
        let lifted = red.map.lift_dead_transitions(&reduced.dead_transitions);
        let names: Vec<&str> = lifted.iter().map(|&t| net.transition_name(t)).collect();
        assert!(names.contains(&"d1") && names.contains(&"d2") && names.contains(&"d3"));
    }

    #[test]
    fn scheduler_reduces_dramatically_with_same_verdict() {
        let net = scheduler3();
        let red = check_equivalent(&net, &all());
        assert!(
            red.net.place_count() < net.place_count() / 2,
            "scheduler should at least halve: {} -> {}",
            net.place_count(),
            red.net.place_count()
        );
        let orig = verify(&net).unwrap();
        let reduced = verify(&red.net).unwrap();
        assert!(reduced.state_count < orig.state_count);
    }

    /// A 3-cycler Milner scheduler, inlined to keep `petri` free of a dev
    /// dependency on `models`.
    fn scheduler3() -> PetriNet {
        let n = 3;
        let mut b = NetBuilder::new("cyclic");
        let ready: Vec<_> = (0..n)
            .map(|i| {
                if i == 0 {
                    b.place_marked(format!("ready{i}"))
                } else {
                    b.place(format!("ready{i}"))
                }
            })
            .collect();
        for i in 0..n {
            let idle = b.place_marked(format!("idle{i}"));
            let busy = b.place(format!("busy{i}"));
            let pass = b.place(format!("pass{i}"));
            b.transition(format!("start{i}"), [ready[i], idle], [busy, pass]);
            b.transition(format!("move{i}"), [pass], [ready[(i + 1) % n]]);
            b.transition(format!("end{i}"), [busy], [idle]);
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_trace_lifts_for_initial_deadlock() {
        // initial marking already dead after reduction removes nothing
        let mut b = NetBuilder::new("stuck");
        b.place_marked("p");
        let q = b.place("q");
        b.transition("t", [q], []);
        let net = b.build().unwrap();
        let red = reduce(&net, &all()).unwrap();
        let lifted = red.map.lift_trace(&[]).unwrap().unwrap();
        let m = net
            .fire_sequence(net.initial_marking(), lifted)
            .unwrap()
            .unwrap();
        assert!(net.is_dead(&m));
    }

    #[test]
    fn disabled_rules_do_nothing() {
        let net = pipeline(4);
        let red = reduce(&net, &ReduceOptions::none()).unwrap();
        assert!(red.report.is_noop());
        assert!(red.map.is_identity());
        assert_eq!(red.net.fingerprint(), net.fingerprint());
    }

    #[test]
    fn report_displays_rule_counts() {
        let red = reduce(&pipeline(3), &all()).unwrap();
        let line = red.report.to_string();
        assert!(line.contains("sp:") && line.contains("dt:"), "{line}");
        assert!(line.contains("->"), "{line}");
    }

    #[test]
    fn invalid_reduced_trace_lifts_to_none() {
        let net = pipeline(3);
        let red = reduce(&net, &only("st")).unwrap();
        assert_eq!(red.net.transition_count(), 1, "chain fuses to one step");
        let t = TransitionId::new(0);
        // firing the fused transition twice is not a valid reduced trace
        assert_eq!(red.map.lift_trace(&[t, t]).unwrap(), None);
        assert!(red.map.lift_trace(&[t]).unwrap().is_some());
    }
}
