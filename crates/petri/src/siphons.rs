//! Siphons and traps: structural deadlock analysis.
//!
//! A **siphon** is a place set `S` with `•S ⊆ S•`: every transition that
//! produces into `S` also consumes from it, so once `S` is empty it stays
//! empty — and at any dead marking of an ordinary net, the empty places
//! form a siphon. A **trap** `Q` satisfies `Q• ⊆ •Q`: once marked it stays
//! marked. Together they yield the classical sufficient condition for
//! deadlock freedom (Commoner): *if every minimal siphon contains an
//! initially marked trap, no reachable marking is dead* — a purely
//! structural certificate, no state space needed.

use crate::bitset::BitSet;
use crate::ids::PlaceId;
use crate::marking::Marking;
use crate::net::PetriNet;

/// `true` if `set` (over place indices) is a siphon: `•S ⊆ S•`.
pub fn is_siphon(net: &PetriNet, set: &BitSet) -> bool {
    for p in set.iter() {
        for &t in net.pre_transitions(PlaceId::new(p)) {
            // t produces into S: it must also consume from S
            if net.pre_place_set(t).is_disjoint(set) {
                return false;
            }
        }
    }
    true
}

/// `true` if `set` is a trap: `Q• ⊆ •Q`.
pub fn is_trap(net: &PetriNet, set: &BitSet) -> bool {
    for p in set.iter() {
        for &t in net.post_transitions(PlaceId::new(p)) {
            // t consumes from Q: it must also produce into Q
            if net.post_place_set(t).is_disjoint(set) {
                return false;
            }
        }
    }
    true
}

/// The largest trap contained in `set` (greatest fixpoint: repeatedly drop
/// places whose consumers do not feed the set back). May be empty.
pub fn max_trap_within(net: &PetriNet, set: &BitSet) -> BitSet {
    let mut q = set.clone();
    loop {
        let mut changed = false;
        for p in q.clone().iter() {
            let violates = net
                .post_transitions(PlaceId::new(p))
                .iter()
                .any(|&t| net.post_place_set(t).is_disjoint(&q));
            if violates {
                q.remove(p);
                changed = true;
            }
        }
        if !changed {
            return q;
        }
    }
}

/// Enumerates the minimal (non-empty) siphons of `net`, up to `limit`
/// candidates explored; returns `None` if the search is cut short.
///
/// Minimal-siphon enumeration is exponential in the worst case; the
/// branch-and-bound below (choose an input place for each unsatisfied
/// producer) is fine at benchmark scales.
pub fn minimal_siphons(net: &PetriNet, limit: usize) -> Option<Vec<BitSet>> {
    let n = net.place_count();
    let mut found: Vec<BitSet> = Vec::new();
    let mut explored = 0usize;

    // seed: every place alone; close into siphons by branching
    fn closure(
        net: &PetriNet,
        set: &BitSet,
        forbidden: &BitSet,
        found: &mut Vec<BitSet>,
        explored: &mut usize,
        limit: usize,
    ) -> bool {
        *explored += 1;
        if *explored > limit {
            return false;
        }
        // find a violated producer: t ∈ •S with •t ∩ S = ∅
        for p in set.iter() {
            for &t in net.pre_transitions(PlaceId::new(p)) {
                if net.pre_place_set(t).is_disjoint(set) {
                    // branch over the input places of t
                    for q in net.pre_place_set(t).iter() {
                        if forbidden.contains(q) {
                            continue;
                        }
                        let mut bigger = set.clone();
                        bigger.insert(q);
                        if !closure(net, &bigger, forbidden, found, explored, limit) {
                            return false;
                        }
                    }
                    return true; // all branches handled (or dead ends)
                }
            }
        }
        // set is a siphon: keep if no known siphon is contained in it
        if !found.iter().any(|s| s.is_subset(set)) {
            found.retain(|s| !set.is_subset(s));
            found.push(set.clone());
        }
        true
    }

    for seed in 0..n {
        let mut set = BitSet::new(n);
        set.insert(seed);
        // forbid smaller seeds: each minimal siphon is found from its
        // smallest member only
        let forbidden = BitSet::from_iter_with_capacity(n, 0..seed);
        if !closure(net, &set, &forbidden, &mut found, &mut explored, limit) {
            return None;
        }
    }
    found.sort();
    Some(found)
}

/// The Commoner-style certificate: every minimal siphon contains a trap
/// that is marked in the initial marking.
///
/// Returns `Some(true)` — a **sound** deadlock-freedom proof — when the
/// condition holds, `Some(false)` when some siphon lacks a marked trap
/// (inconclusive: a deadlock may or may not exist), and `None` when the
/// siphon enumeration exceeded `limit`.
pub fn siphon_trap_certificate(net: &PetriNet, limit: usize) -> Option<bool> {
    let siphons = minimal_siphons(net, limit)?;
    Some(siphons.iter().all(|s| {
        let trap = max_trap_within(net, s);
        !trap.is_empty()
            && trap
                .iter()
                .any(|p| net.initial_marking().is_marked(PlaceId::new(p)))
    }))
}

/// The empty places of a dead marking always form a siphon — the
/// structural witness behind deadlock detection. Exposed for tests and
/// diagnostics.
pub fn empty_places_siphon(net: &PetriNet, dead: &Marking) -> Option<BitSet> {
    if !net.is_dead(dead) {
        return None;
    }
    let empties = BitSet::from_iter_with_capacity(
        net.place_count(),
        net.places()
            .filter(|&p| !dead.is_marked(p))
            .map(PlaceId::index),
    );
    debug_assert!(is_siphon(net, &empties));
    Some(empties)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_iter_with_capacity(n, elems.iter().copied())
    }

    fn cycle() -> PetriNet {
        let mut b = NetBuilder::new("cycle");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("go", [p], [q]);
        b.transition("back", [q], [p]);
        b.build().unwrap()
    }

    #[test]
    fn cycle_places_form_siphon_and_trap() {
        let net = cycle();
        let both = bs(2, &[0, 1]);
        assert!(is_siphon(&net, &both));
        assert!(is_trap(&net, &both));
        let single = bs(2, &[0]);
        assert!(!is_siphon(&net, &single), "back produces into p from q");
        assert!(!is_trap(&net, &single));
    }

    #[test]
    fn minimal_siphons_of_cycle() {
        let net = cycle();
        let siphons = minimal_siphons(&net, 1000).unwrap();
        assert_eq!(siphons, vec![bs(2, &[0, 1])]);
    }

    #[test]
    fn cycle_gets_deadlock_freedom_certificate() {
        assert_eq!(siphon_trap_certificate(&cycle(), 1000), Some(true));
    }

    #[test]
    fn line_net_has_no_certificate() {
        // p -> t -> q: {p} is a siphon with no producers; its max trap is
        // empty, so the certificate fails — and indeed the net deadlocks
        let mut b = NetBuilder::new("line");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("t", [p], [q]);
        let net = b.build().unwrap();
        assert_eq!(siphon_trap_certificate(&net, 1000), Some(false));
    }

    #[test]
    fn max_trap_is_greatest_fixpoint() {
        let net = cycle();
        let all = BitSet::full(2);
        assert_eq!(max_trap_within(&net, &all), all);
        let mut b = NetBuilder::new("leak");
        let p = b.place_marked("p");
        b.transition("leak", [p], []);
        let net2 = b.build().unwrap();
        assert!(max_trap_within(&net2, &BitSet::full(1)).is_empty());
    }

    #[test]
    fn dead_marking_empties_form_siphon() {
        let mut b = NetBuilder::new("line");
        let p = b.place_marked("p");
        let q = b.place("q");
        let r = b.place("r");
        b.transition("t", [p, r], [q]);
        let net = b.build().unwrap();
        // initial marking is dead: r is empty
        let siphon = empty_places_siphon(&net, net.initial_marking()).unwrap();
        assert!(is_siphon(&net, &siphon));
        assert!(siphon.contains(r.index()));
        // a live marking yields no witness
        let mut live = net.initial_marking().clone();
        live.add_token(r);
        assert!(empty_places_siphon(&net, &live).is_none());
    }

    #[test]
    fn limit_cuts_enumeration_short() {
        assert!(minimal_siphons(&cycle(), 0).is_none());
    }

    #[test]
    fn minimality_is_enforced() {
        // two independent cycles: two minimal siphons, not their union
        let mut b = NetBuilder::new("two-cycles");
        for i in 0..2 {
            let p = b.place_marked(format!("p{i}"));
            let q = b.place(format!("q{i}"));
            b.transition(format!("go{i}"), [p], [q]);
            b.transition(format!("back{i}"), [q], [p]);
        }
        let net = b.build().unwrap();
        let siphons = minimal_siphons(&net, 10_000).unwrap();
        assert_eq!(siphons.len(), 2);
        for s in &siphons {
            assert_eq!(s.len(), 2);
        }
    }
}
