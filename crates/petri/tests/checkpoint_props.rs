//! Property tests of the checkpoint layer on seeded random safe nets:
//! snapshot byte round-trips are lossless, and a corrupted snapshot is
//! always rejected with a typed error — never a panic and never a
//! silently wrong verdict.

use models::random::{random_safe_net, RandomNetConfig};
use petri::{Budget, CheckpointConfig, ExploreOptions, Outcome, ReachabilityGraph, Snapshot};
use proptest::prelude::*;

fn cfg() -> RandomNetConfig {
    RandomNetConfig {
        components: 3,
        places_per_component: 4,
        resources: 2,
        resource_use_prob: 0.4,
        choice_prob: 0.5,
        max_states: 4_000,
    }
}

fn opts() -> ExploreOptions {
    ExploreOptions {
        max_states: usize::MAX,
        record_edges: true,
        threads: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An interrupted exploration, snapshotted, serialized to bytes,
    /// decoded, and resumed reaches exactly the uninterrupted result.
    #[test]
    fn snapshot_round_trip_resumes_identically(seed in 0u64..100_000, cap in 1usize..40) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let reference = ReachabilityGraph::explore(&net).expect("validated safe");
        let partial = ReachabilityGraph::explore_bounded(
            &net,
            &opts(),
            &Budget::default().cap_states(cap),
        )
        .expect("validated safe");
        let Outcome::Partial { result, .. } = partial else {
            // the cap exceeded the whole state space: nothing to resume
            return Ok(());
        };
        let bytes = result.to_snapshot(&net, true).to_bytes();
        let snap = Snapshot::from_bytes(&bytes).expect("own bytes decode");
        let resumed = ReachabilityGraph::explore_checkpointed(
            &net,
            &opts(),
            &Budget::default(),
            &CheckpointConfig::default(),
            Some(&snap),
        )
        .expect("resume from own snapshot")
        .into_value();
        prop_assert_eq!(resumed.state_count(), reference.state_count());
        prop_assert_eq!(resumed.edge_count(), reference.edge_count());
        prop_assert_eq!(resumed.has_deadlock(), reference.has_deadlock());
    }

    /// A single flipped bit anywhere in the snapshot bytes is caught by a
    /// typed error at decode or validation time, or — when the flip cannot
    /// change meaning — resuming still reproduces the reference verdict.
    #[test]
    fn bit_flips_never_panic_or_change_the_verdict(seed in 0u64..100_000, bit in 0usize..1 << 16) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let partial = ReachabilityGraph::explore_bounded(
            &net,
            &opts(),
            &Budget::default().cap_states(3),
        )
        .expect("validated safe");
        let mut bytes = partial.value().to_snapshot(&net, true).to_bytes();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let Ok(decoded) = Snapshot::from_bytes(&bytes) else {
            return Ok(()); // typed rejection at the envelope
        };
        match ReachabilityGraph::explore_checkpointed(
            &net,
            &opts(),
            &Budget::default(),
            &CheckpointConfig::default(),
            Some(&decoded),
        ) {
            Err(_) => {} // typed rejection at validation
            Ok(out) => {
                let reference = ReachabilityGraph::explore(&net).expect("validated safe");
                let resumed = out.into_value();
                prop_assert_eq!(resumed.state_count(), reference.state_count());
                prop_assert_eq!(resumed.has_deadlock(), reference.has_deadlock());
            }
        }
    }
}
