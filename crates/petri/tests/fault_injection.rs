//! End-to-end worker-panic recovery, compiled only with the
//! `fault-injection` feature (`cargo test -p petri --features
//! fault-injection`): an injected panic inside a worker must surface as
//! [`NetError::WorkerPanicked`] within bounded wall-clock time, with every
//! other worker joined — no hung quiescence, no poisoned-mutex cascade.
#![cfg(feature = "fault-injection")]

use std::time::{Duration, Instant};

use petri::parallel::{explore_frontier, FrontierOptions};
use petri::{Budget, Marking, NetBuilder, NetError, PetriNet, PlaceId};

/// A deep chain net: enough states that every worker gets to dequeue.
fn chain(n: usize) -> PetriNet {
    let mut b = NetBuilder::new("chain");
    let mut prev = b.place_marked("p0");
    for i in 1..n {
        let next = b.place(format!("p{i}"));
        b.transition(format!("t{i}"), [prev], [next]);
        prev = next;
    }
    b.build().unwrap()
}

fn net_successors(
    net: &PetriNet,
) -> impl Fn(&Marking, &mut Vec<(petri::TransitionId, Marking)>) -> Result<(), NetError> + Sync + '_
{
    move |m, out| {
        for t in net.transitions() {
            if net.enabled(t, m) {
                out.push((t, net.fire(t, m)?));
            }
        }
        Ok(())
    }
}

#[test]
fn injected_panic_surfaces_within_bounded_time() {
    let net = chain(64);
    for threads in [2usize, 8] {
        for fault_after in [1usize, 5, 20] {
            let start = Instant::now();
            let result = explore_frontier(
                net.initial_marking().clone(),
                &FrontierOptions {
                    threads,
                    record_edges: true,
                    budget: Budget::default(),
                    inject_fault_after: Some(fault_after),
                    ..Default::default()
                },
                net_successors(&net),
            );
            let elapsed = start.elapsed();
            assert_eq!(
                result.unwrap_err(),
                NetError::WorkerPanicked,
                "threads={threads} fault_after={fault_after}"
            );
            // "bounded time" = all workers joined promptly; a hung
            // quiescence protocol would block until the test harness
            // timeout instead
            assert!(
                elapsed < Duration::from_secs(30),
                "threads={threads} fault_after={fault_after}: took {elapsed:?}"
            );
        }
    }
}

#[test]
fn engine_stays_usable_after_a_faulted_run() {
    // a panicked run must not leave global state behind that corrupts the
    // next exploration on the same nets
    let net = chain(32);
    let faulted = explore_frontier(
        net.initial_marking().clone(),
        &FrontierOptions {
            threads: 4,
            record_edges: true,
            budget: Budget::default(),
            inject_fault_after: Some(3),
            ..Default::default()
        },
        net_successors(&net),
    );
    assert_eq!(faulted.unwrap_err(), NetError::WorkerPanicked);

    let clean = explore_frontier(
        net.initial_marking().clone(),
        &FrontierOptions {
            threads: 4,
            record_edges: true,
            budget: Budget::default(),
            ..Default::default()
        },
        net_successors(&net),
    )
    .unwrap();
    assert!(clean.is_complete());
    assert_eq!(clean.into_value().states.len(), 32);
}

#[test]
fn fault_injection_composes_with_budgets() {
    // the budget must not mask the panic: the error wins over a partial
    let net = chain(64);
    let result = explore_frontier(
        net.initial_marking().clone(),
        &FrontierOptions {
            threads: 2,
            record_edges: false,
            budget: Budget::default().cap_states(1_000),
            inject_fault_after: Some(2),
            ..Default::default()
        },
        net_successors(&net),
    );
    assert_eq!(result.unwrap_err(), NetError::WorkerPanicked);
}

#[test]
fn panic_mid_steal_surfaces_within_bounded_time() {
    // the thief dies after draining its victim and before re-homing the
    // batch — the items are lost with it, so quiescence can only end via
    // the recorded error, never via the pending counter reaching zero
    let net = chain(64);
    let start = Instant::now();
    let result = explore_frontier(
        net.initial_marking().clone(),
        &FrontierOptions {
            threads: 4,
            inject_fault_on_steal: Some(1),
            ..Default::default()
        },
        |m: &Marking, out: &mut Vec<(petri::TransitionId, Marking)>| {
            // linger so expanded items sit in the owner's deque long
            // enough that an idle worker is guaranteed to steal
            std::thread::sleep(Duration::from_millis(5));
            for t in net.transitions() {
                if net.enabled(t, m) {
                    out.push((t, net.fire(t, m)?));
                }
            }
            Ok(())
        },
    );
    let elapsed = start.elapsed();
    assert_eq!(result.unwrap_err(), NetError::WorkerPanicked);
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");
}

#[test]
fn id_overflow_near_u32_max_fails_closed() {
    // regression for the overflow short-circuit: with the allocator
    // seeded two ids below the sentinel, the run must end in
    // StateIdOverflow (never a wrapped/colliding id) with all workers
    // joined promptly
    let net = chain(64);
    for threads in [2usize, 8] {
        let start = Instant::now();
        let result = explore_frontier(
            net.initial_marking().clone(),
            &FrontierOptions {
                threads,
                seed_next_id: Some(u32::MAX - 2),
                ..Default::default()
            },
            net_successors(&net),
        );
        let elapsed = start.elapsed();
        assert_eq!(
            result.unwrap_err(),
            NetError::StateIdOverflow,
            "threads={threads}"
        );
        assert!(
            elapsed < Duration::from_secs(30),
            "threads={threads}: took {elapsed:?}"
        );
    }
}

#[test]
fn marking_place_ids_roundtrip() {
    // smoke check that the test-net helper builds what it claims
    let net = chain(3);
    assert!(net.initial_marking().is_marked(PlaceId::new(0)));
    assert_eq!(net.place_count(), 3);
}

/// Satellite for the checkpoint layer: an io failure injected into the
/// snapshot write path — mid temp-file write, or in the window between
/// rotating the previous generation and the final rename — must surface
/// as a typed [`CheckpointError::Io`] while leaving a loadable snapshot
/// generation behind. One sequential test function: the armed-fault state
/// is global, so interleaving two of these would race.
#[test]
fn checkpoint_write_faults_keep_a_loadable_generation() {
    use petri::checkpoint::{fault, previous_generation};
    use petri::{
        read_checkpoint, read_checkpoint_with_fallback, write_checkpoint, CheckpointError,
        EngineKind, Snapshot,
    };

    let dir = std::env::temp_dir().join(format!("ckpt-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let net = chain(3);
    let snap = |gen: u8| {
        let mut s = Snapshot::new(EngineKind::Full, &net);
        s.push_section(1, vec![gen; 64]);
        s
    };

    // generation A lands cleanly
    write_checkpoint(&path, &snap(0xAA)).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), snap(0xAA));

    // a fault during the temp-file write surfaces as a typed io error and
    // leaves the primary byte-identical
    fault::arm(fault::STAGE_TMP_WRITE);
    let err = write_checkpoint(&path, &snap(0xBB)).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "typed: {err}");
    assert!(err.to_string().contains("injected fault"), "{err}");
    assert_eq!(
        read_checkpoint_with_fallback(&path).unwrap(),
        snap(0xAA),
        "primary generation survived the torn temp write"
    );

    // disarmed, the same write succeeds and rotates A to `.prev`
    write_checkpoint(&path, &snap(0xBB)).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), snap(0xBB));
    assert_eq!(
        read_checkpoint(&previous_generation(&path)).unwrap(),
        snap(0xAA)
    );

    // a fault after the `.prev` rotation but before the final rename is
    // the worst crash window: the primary name is empty, and the fallback
    // reader must recover the rotated generation
    fault::arm(fault::STAGE_RENAME);
    let err = write_checkpoint(&path, &snap(0xCC)).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "typed: {err}");
    assert!(!path.exists(), "primary gone mid-rotation, as in a crash");
    assert_eq!(
        read_checkpoint_with_fallback(&path).unwrap(),
        snap(0xBB),
        "fallback recovers the rotated generation"
    );

    // and the system heals: the next clean write restores the primary
    write_checkpoint(&path, &snap(0xCC)).unwrap();
    assert_eq!(read_checkpoint_with_fallback(&path).unwrap(), snap(0xCC));
    std::fs::remove_dir_all(&dir).ok();
}

/// The same injected write failure, end to end through an engine: a
/// checkpointing exploration whose snapshot write fails must surface
/// [`NetError::Checkpoint`] instead of panicking or corrupting state.
#[test]
fn engine_surfaces_injected_checkpoint_write_failure() {
    use petri::checkpoint::fault;
    use petri::{CheckpointConfig, ExploreOptions, ReachabilityGraph};

    let dir = std::env::temp_dir().join(format!("ckpt-fault-engine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let net = chain(32);
    let opts = ExploreOptions {
        threads: 1,
        ..Default::default()
    };
    let ckpt = CheckpointConfig::at(&path);
    fault::arm(fault::STAGE_TMP_WRITE);
    let err = ReachabilityGraph::explore_checkpointed(
        &net,
        &opts,
        &Budget::default().cap_states(4),
        &ckpt,
        None,
    )
    .unwrap_err();
    fault::disarm();
    assert!(
        matches!(err, NetError::Checkpoint(_)),
        "typed engine error: {err:?}"
    );
    assert!(!path.exists(), "no torn snapshot under the primary name");
    std::fs::remove_dir_all(&dir).ok();
}
