//! Property tests of the Petri net substrate on seeded random safe nets:
//! token conservation under place invariants, the commutation (diamond)
//! property of independent transitions, and witness-path replay.

use models::random::{random_safe_net, RandomNetConfig};
use petri::{place_invariants, Marking, PetriNet, ReachabilityGraph};
use proptest::prelude::*;

fn cfg() -> RandomNetConfig {
    RandomNetConfig {
        components: 3,
        places_per_component: 4,
        resources: 2,
        resource_use_prob: 0.4,
        choice_prob: 0.5,
        max_states: 4_000,
    }
}

fn weighted_tokens(inv: &[i64], m: &Marking) -> i64 {
    m.places().map(|p| inv[p.index()]).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every minimal place invariant is conserved across the entire
    /// reachable state space — the fundamental structural/behavioural link.
    #[test]
    fn place_invariants_are_conserved(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let invs = place_invariants(&net);
        if invs.is_empty() { return Ok(()); }
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        let expected: Vec<i64> = invs
            .iter()
            .map(|inv| weighted_tokens(inv, net.initial_marking()))
            .collect();
        for s in rg.states() {
            let m = rg.marking(s);
            for (inv, &e) in invs.iter().zip(&expected) {
                prop_assert_eq!(
                    weighted_tokens(inv, m), e,
                    "invariant broken at {}\n{}", m, petri::to_text(&net)
                );
            }
        }
    }

    /// Independent enabled transitions commute: firing in either order
    /// reaches the same marking (the diamond property partial-order
    /// reduction relies on).
    #[test]
    fn independent_transitions_commute(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let m0 = net.initial_marking();
        let enabled = net.enabled_transitions(m0);
        for (i, &t) in enabled.iter().enumerate() {
            for &u in &enabled[i + 1..] {
                // structurally independent: no shared place at all
                let shares_pre = net.pre_place_set(t).intersects(net.pre_place_set(u));
                let t_feeds_u = net.post_place_set(t).intersects(net.pre_place_set(u));
                let u_feeds_t = net.post_place_set(u).intersects(net.pre_place_set(t));
                if shares_pre || t_feeds_u || u_feeds_t {
                    continue;
                }
                let tu = net.fire_sequence(m0, [t, u]).expect("safe").expect("enabled");
                let ut = net.fire_sequence(m0, [u, t]).expect("safe").expect("enabled");
                prop_assert_eq!(&tu, &ut, "diamond broken for {} and {}", t, u);
            }
        }
    }

    /// Every deadlock found by exploration is reproducible by replaying the
    /// shortest witness path from the initial marking.
    #[test]
    fn deadlock_paths_replay(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        for &d in rg.deadlocks().iter().take(3) {
            let path = rg.path_to(d).expect("reachable by construction");
            let m = net
                .fire_sequence(net.initial_marking(), path)
                .expect("safe")
                .expect("replayable");
            prop_assert_eq!(&m, rg.marking(d));
            prop_assert!(net.is_dead(&m));
        }
    }

    /// The textual format is lossless for generated nets.
    #[test]
    fn text_round_trip(seed in 0u64..100_000) {
        let net = models::random::random_net(seed, &cfg());
        let text = petri::to_text(&net);
        let back = petri::parse_net(&text).expect("own output parses");
        prop_assert_eq!(petri::to_text(&back), text);
    }

    /// Exploration is insensitive to edge recording.
    #[test]
    fn edge_recording_does_not_change_counts(seed in 0u64..50_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let with_edges = ReachabilityGraph::explore(&net).expect("safe");
        let without = ReachabilityGraph::explore_with(
            &net,
            &petri::ExploreOptions { max_states: usize::MAX, record_edges: false, ..Default::default() },
        ).expect("safe");
        prop_assert_eq!(with_edges.state_count(), without.state_count());
        prop_assert_eq!(with_edges.edge_count(), without.edge_count());
        prop_assert_eq!(with_edges.has_deadlock(), without.has_deadlock());
    }
}

/// A hand-rolled regression: conflict clusters partition the transitions.
#[test]
fn clusters_partition_transitions() {
    for net in [models::nsdp(3), models::asat(4), models::readers_writers(4)] {
        let info = petri::ConflictInfo::new(&net);
        let mut seen = vec![false; net.transition_count()];
        for cluster in info.clusters() {
            for &t in cluster {
                assert!(!seen[t.index()], "transition in two clusters");
                seen[t.index()] = true;
                assert_eq!(info.cluster_of(t), info.cluster_of(cluster[0]));
            }
        }
        assert!(seen.iter().all(|&b| b), "every transition clustered");
    }
}

/// Maximal conflict-free sets are maximal independent sets: conflict-free,
/// and no transition can be added.
#[test]
fn conflict_free_sets_are_maximal_independent() {
    for net in [
        models::nsdp(2) as PetriNet,
        models::overtake(2),
        models::figures::fig7(),
    ] {
        let info = petri::ConflictInfo::new(&net);
        let sets = info.maximal_conflict_free_sets(1 << 16).expect("small");
        assert_eq!(sets.len() as u128, info.conflict_free_set_count());
        for v in &sets {
            let members: Vec<usize> = v.iter().collect();
            // pairwise conflict-free
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    assert!(
                        !net.in_conflict(petri::TransitionId::new(a), petri::TransitionId::new(b)),
                        "{}: conflict inside a valid set",
                        net.name()
                    );
                }
            }
            // maximal: every outsider conflicts with some member
            for t in net.transitions() {
                if v.contains(t.index()) {
                    continue;
                }
                assert!(
                    members
                        .iter()
                        .any(|&a| net.in_conflict(t, petri::TransitionId::new(a))),
                    "{}: {} could extend a 'maximal' set",
                    net.name(),
                    net.transition_name(t)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The siphon-trap certificate is sound: whenever it proves deadlock
    /// freedom, exhaustive exploration confirms it.
    #[test]
    fn siphon_trap_certificate_is_sound(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        if petri::siphon_trap_certificate(&net, 50_000) == Some(true) {
            let rg = ReachabilityGraph::explore(&net).expect("validated safe");
            prop_assert!(!rg.has_deadlock(), "certificate lied\n{}", petri::to_text(&net));
        }
    }

    /// Minimal siphons are siphons, pairwise incomparable, and at any dead
    /// marking the empty places contain one of them.
    #[test]
    fn minimal_siphons_are_minimal_siphons(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let Some(siphons) = petri::minimal_siphons(&net, 50_000) else { return Ok(()); };
        for (i, s) in siphons.iter().enumerate() {
            prop_assert!(petri::is_siphon(&net, s));
            for (j, t) in siphons.iter().enumerate() {
                if i != j {
                    prop_assert!(!s.is_subset(t), "non-minimal siphon kept");
                }
            }
        }
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        for &d in rg.deadlocks().iter().take(2) {
            let empties = petri::empty_places_siphon(&net, rg.marking(d)).expect("dead");
            prop_assert!(
                siphons.iter().any(|s| s.is_subset(&empties)),
                "no minimal siphon inside the dead marking's empty places"
            );
        }
    }
}
