//! A from-scratch reduced ordered binary decision diagram (ROBDD) engine.
//!
//! Implements the classical Bryant construction [2]: hash-consed nodes in a
//! fixed variable order, an ITE-based apply with memoization, existential
//! quantification, the combined `and_exists` (relational product) used by
//! image computation, monotone variable renaming, and model counting.
//!
//! The engine does not garbage-collect: the paper's comparison metric is
//! *peak* BDD size, so keeping everything allocated and reporting both the
//! high-water mark of live nodes and the total allocation is exactly what
//! the evaluation needs.

use std::collections::HashMap;

/// Index of a BDD node within its [`Bdd`] manager.
///
/// `NodeId`s are only meaningful relative to the manager that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The constant **false** function.
pub const BDD_FALSE: BddRef = BddRef(0);
/// The constant **true** function.
pub const BDD_TRUE: BddRef = BddRef(1);

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A BDD manager: owns the node store and all operation caches.
///
/// # Examples
///
/// ```
/// use symbolic::{Bdd, BDD_FALSE};
///
/// let mut bdd = Bdd::new(4);
/// let x0 = bdd.var(0);
/// let x1 = bdd.var(1);
/// let f = bdd.and(x0, x1);
/// assert_eq!(bdd.eval(f, &[true, true, false, false]), true);
/// assert_eq!(bdd.eval(f, &[true, false, false, false]), false);
/// let g = bdd.not(f);
/// assert_eq!(bdd.and(f, g), BDD_FALSE);
/// ```
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    nvars: u32,
}

impl Bdd {
    /// Creates a manager over variables `0..nvars`.
    pub fn new(nvars: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: BDD_FALSE,
                hi: BDD_FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                lo: BDD_TRUE,
                hi: BDD_TRUE,
            },
        ];
        Bdd {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            nvars: u32::try_from(nvars).expect("variable count fits in u32"),
        }
    }

    /// Number of variables in the order.
    pub fn var_count(&self) -> usize {
        self.nvars as usize
    }

    /// Total nodes ever allocated (terminals included).
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn var_of(&self, f: BddRef) -> u32 {
        self.nodes[f.index()].var
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            self.nodes.push(Node { var, lo, hi });
            BddRef(u32::try_from(self.nodes.len() - 1).expect("node count fits in u32"))
        })
    }

    /// The single-variable function `x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the variable order.
    pub fn var(&mut self, v: usize) -> BddRef {
        assert!(
            (v as u32) < self.nvars,
            "variable {v} out of order 0..{}",
            self.nvars
        );
        self.mk(v as u32, BDD_FALSE, BDD_TRUE)
    }

    /// The negated single-variable function `¬x_v`.
    pub fn nvar(&mut self, v: usize) -> BddRef {
        assert!(
            (v as u32) < self.nvars,
            "variable {v} out of order 0..{}",
            self.nvars
        );
        self.mk(v as u32, BDD_TRUE, BDD_FALSE)
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // terminal shortcuts
        if f == BDD_TRUE {
            return g;
        }
        if f == BDD_FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BDD_TRUE && h == BDD_FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.nodes[f.index()];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BDD_FALSE)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BDD_TRUE, g)
    }

    /// Negation `¬f`.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BDD_FALSE, BDD_TRUE)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Existential quantification of every variable in `vars` (a sorted
    /// slice of variable indices).
    pub fn exists(&mut self, f: BddRef, vars: &[usize]) -> BddRef {
        let mut cache = HashMap::new();
        self.exists_rec(f, vars, &mut cache)
    }

    fn exists_rec(
        &mut self,
        f: BddRef,
        vars: &[usize],
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f == BDD_FALSE || f == BDD_TRUE || vars.is_empty() {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.nodes[f.index()];
        // skip quantified variables above the node's own variable
        let rest: &[usize] = {
            let mut i = 0;
            while i < vars.len() && (vars[i] as u32) < n.var {
                i += 1;
            }
            &vars[i..]
        };
        let r = if rest.first() == Some(&(n.var as usize)) {
            let lo = self.exists_rec(n.lo, &rest[1..], cache);
            let hi = self.exists_rec(n.hi, &rest[1..], cache);
            self.or(lo, hi)
        } else {
            let lo = self.exists_rec(n.lo, rest, cache);
            let hi = self.exists_rec(n.hi, rest, cache);
            self.mk(n.var, lo, hi)
        };
        cache.insert(f, r);
        r
    }

    /// The relational product `∃ vars. (f ∧ g)` computed in one pass —
    /// the workhorse of symbolic image computation.
    pub fn and_exists(&mut self, f: BddRef, g: BddRef, vars: &[usize]) -> BddRef {
        let mut cache = HashMap::new();
        self.and_exists_rec(f, g, vars, &mut cache)
    }

    fn and_exists_rec(
        &mut self,
        f: BddRef,
        g: BddRef,
        vars: &[usize],
        cache: &mut HashMap<(BddRef, BddRef), BddRef>,
    ) -> BddRef {
        if f == BDD_FALSE || g == BDD_FALSE {
            return BDD_FALSE;
        }
        if f == BDD_TRUE && g == BDD_TRUE {
            return BDD_TRUE;
        }
        if vars.is_empty() {
            return self.and(f, g);
        }
        if let Some(&r) = cache.get(&(f, g)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g));
        if top == TERMINAL_VAR {
            return self.and(f, g);
        }
        let rest: &[usize] = {
            let mut i = 0;
            while i < vars.len() && (vars[i] as u32) < top {
                i += 1;
            }
            &vars[i..]
        };
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let r = if rest.first() == Some(&(top as usize)) {
            let lo = self.and_exists_rec(f0, g0, &rest[1..], cache);
            if lo == BDD_TRUE {
                BDD_TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, &rest[1..], cache);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, rest, cache);
            let hi = self.and_exists_rec(f1, g1, rest, cache);
            self.mk(top, lo, hi)
        };
        cache.insert((f, g), r);
        r
    }

    /// Renames variables through a **monotone** mapping `map[v] = v'`
    /// (order-preserving on the variables actually present in `f`).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the mapping is monotone along each path.
    pub fn rename(&mut self, f: BddRef, map: &[usize]) -> BddRef {
        let mut cache = HashMap::new();
        self.rename_rec(f, map, &mut cache)
    }

    fn rename_rec(
        &mut self,
        f: BddRef,
        map: &[usize],
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f == BDD_FALSE || f == BDD_TRUE {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.nodes[f.index()];
        let lo = self.rename_rec(n.lo, map, cache);
        let hi = self.rename_rec(n.hi, map, cache);
        let nv = map[n.var as usize] as u32;
        debug_assert!(
            self.var_of(lo) > nv && self.var_of(hi) > nv,
            "non-monotone renaming"
        );
        let r = self.mk(nv, lo, hi);
        cache.insert(f, r);
        r
    }

    /// Evaluates `f` under a full assignment (index = variable).
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == BDD_TRUE {
                return true;
            }
            if cur == BDD_FALSE {
                return false;
            }
            let n = self.nodes[cur.index()];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Number of satisfying assignments of `f` counted over `k` relevant
    /// variables, assuming `f` only depends on variables from that set.
    ///
    /// This is [`sat_count_total`](Self::sat_count_total) renormalized: a
    /// function over the first `k` of `n` manager variables has each model
    /// counted `2^(n−k)` times by the total count.
    pub fn sat_count_over(&self, f: BddRef, k: usize) -> f64 {
        let n = self.nvars as i32;
        self.sat_count_total(f) / 2f64.powi(n - k as i32)
    }

    fn sat_count_rec(&self, f: BddRef, cache: &mut HashMap<BddRef, f64>) -> f64 {
        if f == BDD_FALSE {
            return 0.0;
        }
        if f == BDD_TRUE {
            return 1.0;
        }
        if let Some(&c) = cache.get(&f) {
            return c;
        }
        let n = self.nodes[f.index()];
        let lo = self.sat_count_rec(n.lo, cache);
        let hi = self.sat_count_rec(n.hi, cache);
        let scale = |child: BddRef, count: f64| -> f64 {
            let cv = self.var_of(child).min(self.nvars);
            count * 2f64.powi((cv - n.var - 1) as i32)
        };
        let c = scale(n.lo, lo) + scale(n.hi, hi);
        cache.insert(f, c);
        c
    }

    /// Counts satisfying assignments over **all** manager variables.
    pub fn sat_count_total(&self, f: BddRef) -> f64 {
        if f == BDD_FALSE {
            return 0.0;
        }
        let mut cache = HashMap::new();
        let c = self.sat_count_rec(f, &mut cache);
        let top = self.var_of(f).min(self.nvars);
        c * 2f64.powi(top as i32)
    }

    /// Extracts one satisfying assignment as a vector indexed by variable:
    /// `Some(true/false)` for variables on the chosen path, `None` for
    /// don't-cares. Returns `None` when `f` is unsatisfiable.
    pub fn some_cube(&self, f: BddRef) -> Option<Vec<Option<bool>>> {
        if f == BDD_FALSE {
            return None;
        }
        let mut cube = vec![None; self.nvars as usize];
        let mut cur = f;
        while cur != BDD_TRUE {
            let n = self.nodes[cur.index()];
            if n.lo != BDD_FALSE {
                cube[n.var as usize] = Some(false);
                cur = n.lo;
            } else {
                cube[n.var as usize] = Some(true);
                cur = n.hi;
            }
        }
        Some(cube)
    }

    /// Number of distinct nodes reachable from `f` (its BDD size),
    /// terminals excluded.
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n == BDD_TRUE || n == BDD_FALSE || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.index()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        let mut b = Bdd::new(2);
        assert_eq!(b.and(BDD_TRUE, BDD_FALSE), BDD_FALSE);
        assert_eq!(b.or(BDD_TRUE, BDD_FALSE), BDD_TRUE);
        assert_eq!(b.not(BDD_TRUE), BDD_FALSE);
        assert_eq!(b.not(BDD_FALSE), BDD_TRUE);
    }

    #[test]
    fn hash_consing_canonicalizes() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f1 = b.and(x, y);
        let f2 = b.and(y, x);
        assert_eq!(f1, f2, "structural equality by construction");
        let nx = b.not(x);
        let back = b.not(nx);
        assert_eq!(back, x, "double negation is identity");
    }

    #[test]
    fn de_morgan_holds() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let lhs = {
            let a = b.and(x, y);
            b.not(a)
        };
        let rhs = {
            let nx = b.not(x);
            let ny = b.not(y);
            b.or(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_and_iff_are_complements() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let xo = b.xor(x, y);
        let eq = b.iff(x, y);
        let neq = b.not(eq);
        assert_eq!(xo, neq);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let f = b.or(xy, z); // (x ∧ y) ∨ z
        for bits in 0..8u8 {
            let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = (a[0] && a[1]) || a[2];
            assert_eq!(b.eval(f, &a), expected, "{a:?}");
        }
    }

    #[test]
    fn exists_quantifies() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        assert_eq!(b.exists(f, &[0]), y);
        assert_eq!(b.exists(f, &[1]), x);
        assert_eq!(b.exists(f, &[0, 1]), BDD_TRUE);
        let none = b.exists(BDD_FALSE, &[0, 1]);
        assert_eq!(none, BDD_FALSE);
    }

    #[test]
    fn and_exists_equals_composed_ops() {
        let mut b = Bdd::new(4);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let x2 = b.var(2);
        let x3 = b.var(3);
        let f = {
            let a = b.or(x0, x2);
            b.and(a, x3)
        };
        let g = {
            let a = b.xor(x1, x2);
            b.or(a, x0)
        };
        let direct = b.and_exists(f, g, &[0, 2]);
        let composed = {
            let fg = b.and(f, g);
            b.exists(fg, &[0, 2])
        };
        assert_eq!(direct, composed);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut b = Bdd::new(4);
        let x1 = b.var(1);
        let x3 = b.var(3);
        let f = b.and(x1, x3);
        // monotone map: 1 -> 0, 3 -> 2
        let map = [0usize, 0, 2, 2];
        let g = b.rename(f, &map);
        let x0 = b.var(0);
        let x2 = b.var(2);
        let expected = b.and(x0, x2);
        assert_eq!(g, expected);
    }

    #[test]
    fn sat_count_total_counts() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y); // 6 of 8 assignments
        assert_eq!(b.sat_count_total(f), 6.0);
        assert_eq!(b.sat_count_total(BDD_TRUE), 8.0);
        assert_eq!(b.sat_count_total(BDD_FALSE), 0.0);
        let single = {
            let nx = b.not(x);
            let ny = b.not(y);
            let z = b.var(2);
            let a = b.and(nx, ny);
            b.and(a, z)
        };
        assert_eq!(b.sat_count_total(single), 1.0);
    }

    #[test]
    fn sat_count_over_renormalizes() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y); // depends only on the first two variables
        assert_eq!(b.sat_count_over(f, 2), 3.0);
        assert_eq!(b.sat_count_over(BDD_TRUE, 2), 4.0);
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        assert_eq!(b.size(f), 2);
        assert_eq!(b.size(BDD_TRUE), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn var_out_of_range_panics() {
        let mut b = Bdd::new(2);
        b.var(2);
    }
}
