//! A thread-safe ZDD manager for concurrent set-family algebra.
//!
//! [`ConcurrentZdd`] is the `Send + Sync` sibling of the serial [`Zdd`]
//! manager: the same canonical zero-suppressed node structure, the same
//! operations, but every method takes `&self` so one manager can be shared
//! across worker threads (e.g. behind an `Arc` by the generalized
//! partial-order engine's parallel frontier).
//!
//! # Design
//!
//! The node store is split into `2^k` **shards**. Each shard owns
//!
//! * an append-only node **arena** (`RwLock<Vec<Node>>`) — nodes are never
//!   mutated after insertion, so readers only take the cheap read lock;
//! * a **unique table** (`Mutex<HashMap<(var, lo, hi), ZddRef>>`) — the
//!   hash-consing map that guarantees canonicity;
//! * an **op cache** (`Mutex<HashMap<(Op, f, g), ZddRef>>`) memoizing
//!   union / intersect / diff / join results.
//!
//! A node's shard is chosen by hashing its `(var, lo, hi)` key, so *every*
//! thread constructing a structurally equal node lands on the same shard
//! and receives the same [`ZddRef`] — canonicity (and therefore O(1)
//! structural equality) holds across threads by construction. Node ids
//! encode `shard << 28 | index-within-shard`; shard 0 pre-seeds the two
//! terminals so [`ZDD_EMPTY`] (id 0) and [`ZDD_UNIT`] (id 1) keep their
//! global meaning.
//!
//! The whole design is safe Rust (`#![forbid(unsafe_code)]` stands): no
//! hand-rolled atomics over packed nodes, just fine-grained locking that
//! is uncontended in practice because operations on distinct sub-diagrams
//! hash to distinct shards.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};

use crate::zdd::{export_table, import_table, Node, Op, TERMINAL_VAR};
use crate::{ZddRef, ZDD_EMPTY, ZDD_UNIT};

/// log₂ of the shard count.
const SHARD_BITS: u32 = 4;
/// Number of unique-table / arena / op-cache shards.
const SHARDS: usize = 1 << SHARD_BITS;
/// Bits of a [`ZddRef`] holding the within-shard arena index.
const INDEX_BITS: u32 = 32 - SHARD_BITS;
/// Mask extracting the within-shard arena index.
const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;
/// Default per-shard op-cache entry cap (see
/// [`ConcurrentZdd::with_cache_capacity`]).
const DEFAULT_OP_CACHE_CAPACITY: usize = 1 << 18;

/// Acquires a mutex even if another thread panicked while holding it; all
/// critical sections below perform only non-panicking map/vec inserts, so
/// the protected data is never torn.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A generationally evicted memo table: lookups consult the `current`
/// generation first and fall back to (promoting from) `previous`; once
/// `current` fills its per-shard cap, `previous` is dropped wholesale and
/// `current` takes its place. Recently used entries therefore survive at
/// least one full generation, and the table never holds more than two
/// generations' worth of entries — bounding memory on long runs.
#[derive(Default)]
struct OpCache {
    current: HashMap<(Op, ZddRef, ZddRef), ZddRef>,
    previous: HashMap<(Op, ZddRef, ZddRef), ZddRef>,
}

struct Shard {
    nodes: RwLock<Vec<Node>>,
    unique: Mutex<HashMap<(u32, ZddRef, ZddRef), ZddRef>>,
    cache: Mutex<OpCache>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            nodes: RwLock::new(Vec::new()),
            unique: Mutex::new(HashMap::new()),
            cache: Mutex::new(OpCache::default()),
        }
    }
}

/// A sharded-lock, shareable ZDD manager (see the module docs).
///
/// Structurally equal families built through the same manager — from any
/// thread — receive the same [`ZddRef`], exactly like the serial [`Zdd`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use symbolic::ConcurrentZdd;
///
/// let z = Arc::new(ConcurrentZdd::new(3));
/// let refs: Vec<_> = std::thread::scope(|s| {
///     (0..4)
///         .map(|_| {
///             let z = Arc::clone(&z);
///             s.spawn(move || z.family(&[vec![0, 1], vec![2]]))
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
///         .map(|h| h.join().unwrap())
///         .collect()
/// });
/// assert!(refs.windows(2).all(|w| w[0] == w[1]), "canonical across threads");
/// assert_eq!(z.count(refs[0]), 2);
/// ```
///
/// [`Zdd`]: crate::Zdd
pub struct ConcurrentZdd {
    shards: Vec<Shard>,
    nvars: u32,
    cache_capacity: usize,
    unique_hits: AtomicU64,
    op_cache_hits: AtomicU64,
    op_cache_evictions: AtomicU64,
}

impl std::fmt::Debug for ConcurrentZdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentZdd")
            .field("nvars", &self.nvars)
            .field("allocated_nodes", &self.allocated_nodes())
            .field("unique_hits", &self.unique_hits())
            .field("op_cache_hits", &self.op_cache_hits())
            .field("op_cache_evictions", &self.op_cache_evictions())
            .finish()
    }
}

impl ConcurrentZdd {
    /// Creates a manager over elements `0..nvars` with the default
    /// per-shard op-cache capacity.
    pub fn new(nvars: usize) -> Self {
        Self::with_cache_capacity(nvars, DEFAULT_OP_CACHE_CAPACITY)
    }

    /// Creates a manager whose memo caches hold at most
    /// `2 × per_shard_capacity` entries per shard (two generations — see
    /// the eviction scheme on the op cache). Eviction only ever discards
    /// memoized results, never nodes: every operation recomputes to the
    /// same canonical [`ZddRef`], so results are identical at any capacity.
    pub fn with_cache_capacity(nvars: usize, per_shard_capacity: usize) -> Self {
        let shards: Vec<Shard> = (0..SHARDS).map(|_| Shard::new()).collect();
        // shard 0 owns the terminals at indices 0 and 1, so the shared
        // ZDD_EMPTY / ZDD_UNIT constants keep their ids in this manager
        {
            let mut nodes = shards[0]
                .nodes
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            nodes.push(Node {
                var: TERMINAL_VAR,
                lo: ZDD_EMPTY,
                hi: ZDD_EMPTY,
            });
            nodes.push(Node {
                var: TERMINAL_VAR,
                lo: ZDD_UNIT,
                hi: ZDD_UNIT,
            });
        }
        ConcurrentZdd {
            shards,
            nvars: u32::try_from(nvars).expect("element count fits in u32"),
            cache_capacity: per_shard_capacity.max(1),
            unique_hits: AtomicU64::new(0),
            op_cache_hits: AtomicU64::new(0),
            op_cache_evictions: AtomicU64::new(0),
        }
    }

    /// Number of elements in the universe.
    pub fn var_count(&self) -> usize {
        self.nvars as usize
    }

    /// Total nodes ever allocated (terminals included).
    pub fn allocated_nodes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.nodes.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// How many [`mk`](Self::new) requests were answered from the unique
    /// table instead of allocating a fresh node.
    pub fn unique_hits(&self) -> u64 {
        self.unique_hits.load(Ordering::Relaxed)
    }

    /// How many algebra operations were answered from the memo caches.
    pub fn op_cache_hits(&self) -> u64 {
        self.op_cache_hits.load(Ordering::Relaxed)
    }

    /// How many memoized operation results were discarded by generational
    /// cache eviction (0 until a shard's cache first fills its capacity).
    pub fn op_cache_evictions(&self) -> u64 {
        self.op_cache_evictions.load(Ordering::Relaxed)
    }

    /// Copies the node behind `f` out of its shard arena.
    fn node(&self, f: ZddRef) -> Node {
        let raw = f.raw();
        let shard = (raw >> INDEX_BITS) as usize;
        let idx = (raw & INDEX_MASK) as usize;
        self.shards[shard]
            .nodes
            .read()
            .unwrap_or_else(PoisonError::into_inner)[idx]
    }

    fn var_of(&self, f: ZddRef) -> u32 {
        self.node(f).var
    }

    fn key_shard(var: u32, lo: ZddRef, hi: ZddRef) -> usize {
        let mut h = DefaultHasher::new();
        (var, lo, hi).hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// Hash-conses a node, applying the zero-suppression rule. The arena
    /// write happens under the shard's unique-table lock, so two threads
    /// racing on the same key always agree on the winner's id.
    fn mk(&self, var: u32, lo: ZddRef, hi: ZddRef) -> ZddRef {
        if hi == ZDD_EMPTY {
            return lo; // zero-suppression
        }
        let shard = &self.shards[Self::key_shard(var, lo, hi)];
        let mut unique = lock_ignore_poison(&shard.unique);
        if let Some(&r) = unique.get(&(var, lo, hi)) {
            self.unique_hits.fetch_add(1, Ordering::Relaxed);
            return r;
        }
        let idx = {
            let mut nodes = shard.nodes.write().unwrap_or_else(PoisonError::into_inner);
            nodes.push(Node { var, lo, hi });
            nodes.len() - 1
        };
        assert!(
            idx <= INDEX_MASK as usize,
            "shard arena exceeds 2^{INDEX_BITS} nodes"
        );
        let r =
            ZddRef::from_raw(((Self::key_shard(var, lo, hi) as u32) << INDEX_BITS) | idx as u32);
        unique.insert((var, lo, hi), r);
        r
    }

    fn cached(&self, op: Op, f: ZddRef, g: ZddRef) -> Option<ZddRef> {
        let shard = &self.shards[Self::key_shard(op as u32, f, g)];
        let mut cache = lock_ignore_poison(&shard.cache);
        let key = (op, f, g);
        let mut hit = cache.current.get(&key).copied();
        if hit.is_none() {
            if let Some(r) = cache.previous.get(&key).copied() {
                // promote: survivors of the previous generation that are
                // still in use should outlive the next rotation too
                cache.current.insert(key, r);
                hit = Some(r);
            }
        }
        if hit.is_some() {
            self.op_cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn remember(&self, op: Op, f: ZddRef, g: ZddRef, r: ZddRef) {
        let shard = &self.shards[Self::key_shard(op as u32, f, g)];
        let mut cache = lock_ignore_poison(&shard.cache);
        cache.current.insert((op, f, g), r);
        if cache.current.len() >= self.cache_capacity {
            let retired = std::mem::take(&mut cache.current);
            let evicted = std::mem::replace(&mut cache.previous, retired);
            self.op_cache_evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
    }

    /// The family containing exactly one set (given as element indices).
    ///
    /// # Panics
    ///
    /// Panics if an element is outside the universe.
    pub fn singleton(&self, set: &[usize]) -> ZddRef {
        let mut sorted: Vec<usize> = set.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut cur = ZDD_UNIT;
        for &e in sorted.iter().rev() {
            assert!((e as u32) < self.nvars, "element {e} out of universe");
            cur = self.mk(e as u32, ZDD_EMPTY, cur);
        }
        cur
    }

    /// The family containing each of the given sets.
    pub fn family(&self, sets: &[Vec<usize>]) -> ZddRef {
        let mut acc = ZDD_EMPTY;
        for s in sets {
            let one = self.singleton(s);
            acc = self.union(acc, one);
        }
        acc
    }

    fn cofactors(&self, f: ZddRef, var: u32) -> (ZddRef, ZddRef) {
        let n = self.node(f);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, ZDD_EMPTY)
        }
    }

    /// Family union `f ∪ g`.
    pub fn union(&self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == g || g == ZDD_EMPTY {
            return f;
        }
        if f == ZDD_EMPTY {
            return g;
        }
        if let Some(r) = self.cached(Op::Union, f, g) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.union(f0, g0);
        let hi = self.union(f1, g1);
        let r = self.mk(top, lo, hi);
        self.remember(Op::Union, f, g, r);
        self.remember(Op::Union, g, f, r);
        r
    }

    /// Family intersection `f ∩ g` (sets belonging to both families).
    pub fn intersect(&self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == g {
            return f;
        }
        if f == ZDD_EMPTY || g == ZDD_EMPTY {
            return ZDD_EMPTY;
        }
        if let Some(r) = self.cached(Op::Intersect, f, g) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let r = if vf == vg {
            let (f0, f1) = self.cofactors(f, vf);
            let (g0, g1) = self.cofactors(g, vf);
            let lo = self.intersect(f0, g0);
            let hi = self.intersect(f1, g1);
            self.mk(vf, lo, hi)
        } else if vf < vg {
            // sets in f containing vf cannot be in g
            let f0 = self.node(f).lo;
            self.intersect(f0, g)
        } else {
            let g0 = self.node(g).lo;
            self.intersect(f, g0)
        };
        self.remember(Op::Intersect, f, g, r);
        self.remember(Op::Intersect, g, f, r);
        r
    }

    /// Family difference `f \ g` (sets of `f` not in `g`).
    pub fn diff(&self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == ZDD_EMPTY || f == g {
            return ZDD_EMPTY;
        }
        if g == ZDD_EMPTY {
            return f;
        }
        if let Some(r) = self.cached(Op::Diff, f, g) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let r = if vf == vg {
            let (f0, f1) = self.cofactors(f, vf);
            let (g0, g1) = self.cofactors(g, vf);
            let lo = self.diff(f0, g0);
            let hi = self.diff(f1, g1);
            self.mk(vf, lo, hi)
        } else if vf < vg {
            let node = self.node(f);
            let lo = self.diff(node.lo, g);
            self.mk(vf, lo, node.hi)
        } else {
            let g0 = self.node(g).lo;
            self.diff(f, g0)
        };
        self.remember(Op::Diff, f, g, r);
        r
    }

    /// The sub-family of sets **containing** element `e` (sets keep `e`).
    pub fn onset(&self, f: ZddRef, e: usize) -> ZddRef {
        self.onset_rec(f, e as u32)
    }

    fn onset_rec(&self, f: ZddRef, e: u32) -> ZddRef {
        let v = self.var_of(f);
        if v > e {
            // e cannot occur below (vars increase downward)
            return ZDD_EMPTY;
        }
        let n = self.node(f);
        if v == e {
            return self.mk(e, ZDD_EMPTY, n.hi);
        }
        let lo = self.onset_rec(n.lo, e);
        let hi = self.onset_rec(n.hi, e);
        self.mk(n.var, lo, hi)
    }

    /// The sub-family of sets **not containing** element `e`.
    pub fn offset(&self, f: ZddRef, e: usize) -> ZddRef {
        self.offset_rec(f, e as u32)
    }

    fn offset_rec(&self, f: ZddRef, e: u32) -> ZddRef {
        let v = self.var_of(f);
        if v > e {
            return f;
        }
        let n = self.node(f);
        if v == e {
            return n.lo;
        }
        let lo = self.offset_rec(n.lo, e);
        let hi = self.offset_rec(n.hi, e);
        self.mk(n.var, lo, hi)
    }

    /// The cross-join `f ⊔ g = {a ∪ b | a ∈ f, b ∈ g}`.
    pub fn join(&self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == ZDD_EMPTY || g == ZDD_EMPTY {
            return ZDD_EMPTY;
        }
        if f == ZDD_UNIT {
            return g;
        }
        if g == ZDD_UNIT {
            return f;
        }
        if let Some(r) = self.cached(Op::Join, f, g) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        // sets with `top`: f1⊔g1 ∪ f1⊔g0 ∪ f0⊔g1; without: f0⊔g0
        let a = self.join(f1, g1);
        let b = self.join(f1, g0);
        let c = self.join(f0, g1);
        let hi = {
            let ab = self.union(a, b);
            self.union(ab, c)
        };
        let lo = self.join(f0, g0);
        let r = self.mk(top, lo, hi);
        self.remember(Op::Join, f, g, r);
        self.remember(Op::Join, g, f, r);
        r
    }

    /// Number of sets in the family, exact up to `u128::MAX` (saturating
    /// beyond — a family over ≤ 128 elements can never saturate).
    pub fn count(&self, f: ZddRef) -> u128 {
        let mut cache: HashMap<ZddRef, u128> = HashMap::new();
        self.count_rec(f, &mut cache)
    }

    /// Approximate set count as a float, for display of astronomically
    /// large families (loses precision above 2⁵³).
    pub fn count_f64(&self, f: ZddRef) -> f64 {
        self.count(f) as f64
    }

    fn count_rec(&self, f: ZddRef, cache: &mut HashMap<ZddRef, u128>) -> u128 {
        if f == ZDD_EMPTY {
            return 0;
        }
        if f == ZDD_UNIT {
            return 1;
        }
        if let Some(&c) = cache.get(&f) {
            return c;
        }
        let n = self.node(f);
        let c = self
            .count_rec(n.lo, cache)
            .saturating_add(self.count_rec(n.hi, cache));
        cache.insert(f, c);
        c
    }

    /// `true` if `f` is the empty family.
    pub fn is_empty(&self, f: ZddRef) -> bool {
        f == ZDD_EMPTY
    }

    /// Membership test: is `set` one of the family's sets?
    pub fn contains_set(&self, f: ZddRef, set: &[usize]) -> bool {
        let mut sorted: Vec<u32> = set.iter().map(|&e| e as u32).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut cur = f;
        let mut i = 0;
        loop {
            if cur == ZDD_EMPTY {
                return false;
            }
            if cur == ZDD_UNIT {
                return i == sorted.len();
            }
            let n = self.node(cur);
            if i < sorted.len() && sorted[i] == n.var {
                cur = n.hi;
                i += 1;
            } else if i < sorted.len() && sorted[i] < n.var {
                return false; // required element cannot occur anymore
            } else {
                cur = n.lo;
            }
        }
    }

    /// Materializes every set of the family, each sorted ascending; the
    /// family itself is returned in lexicographic order.
    pub fn sets(&self, f: ZddRef) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.sets_rec(f, &mut prefix, &mut out);
        out.sort();
        out
    }

    fn sets_rec(&self, f: ZddRef, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if f == ZDD_EMPTY {
            return;
        }
        if f == ZDD_UNIT {
            out.push(prefix.clone());
            return;
        }
        let n = self.node(f);
        self.sets_rec(n.lo, prefix, out);
        prefix.push(n.var as usize);
        self.sets_rec(n.hi, prefix, out);
        prefix.pop();
    }

    /// Materializes at most `k` sets of the family (depth-first order) —
    /// cheap even when the family is astronomically large.
    pub fn some_sets(&self, f: ZddRef, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.some_sets_rec(f, k, &mut prefix, &mut out);
        out
    }

    fn some_sets_rec(
        &self,
        f: ZddRef,
        k: usize,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= k || f == ZDD_EMPTY {
            return;
        }
        if f == ZDD_UNIT {
            out.push(prefix.clone());
            return;
        }
        let n = self.node(f);
        self.some_sets_rec(n.lo, k, prefix, out);
        if out.len() >= k {
            return;
        }
        prefix.push(n.var as usize);
        self.some_sets_rec(n.hi, k, prefix, out);
        prefix.pop();
    }

    /// Number of distinct nodes reachable from `f` (terminals excluded).
    pub fn size(&self, f: ZddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n == ZDD_EMPTY || n == ZDD_UNIT || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.node(n);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }

    /// Exports the sub-diagrams rooted at `roots` as a portable node table
    /// (see [`Zdd::export`](crate::Zdd::export) for the format). Node ids of
    /// this manager encode shard/index pairs, so the table — not the raw
    /// [`ZddRef`]s — is the only serializable form of a family.
    pub fn export(&self, roots: &[ZddRef]) -> (Vec<(u32, u32, u32)>, Vec<u32>) {
        export_table(|f| self.node(f), roots)
    }

    /// Rebuilds families from an exported node table, hash-consing every
    /// node so the returned [`ZddRef`]s are canonical in this manager (a
    /// table exported from a serial [`Zdd`](crate::Zdd) imports equally
    /// well — the format is manager-independent).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation (see
    /// [`Zdd::import`](crate::Zdd::import)).
    pub fn import(&self, table: &[(u32, u32, u32)], roots: &[u32]) -> Result<Vec<ZddRef>, String> {
        import_table(self.nvars, |v, lo, hi| self.mk(v, lo, hi), table, roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Zdd;
    use std::sync::Arc;

    /// A small zoo of families over a 6-element universe.
    fn zoo() -> Vec<Vec<Vec<usize>>> {
        vec![
            vec![],
            vec![vec![]],
            vec![vec![0]],
            vec![vec![0, 1], vec![2]],
            vec![vec![1, 2], vec![0, 3], vec![5]],
            vec![vec![0, 2, 4], vec![1, 3, 5], vec![], vec![2]],
            vec![vec![0], vec![1], vec![2], vec![3], vec![4], vec![5]],
        ]
    }

    #[test]
    fn matches_serial_manager_on_the_algebra() {
        // cross-equivalence pin: every op agrees with the serial Zdd
        for a in zoo() {
            for b in zoo() {
                let mut s = Zdd::new(6);
                let c = ConcurrentZdd::new(6);
                let (sa, sb) = (s.family(&a), s.family(&b));
                let (ca, cb) = (c.family(&a), c.family(&b));
                let su = s.union(sa, sb);
                assert_eq!(s.sets(su), c.sets(c.union(ca, cb)));
                let si = s.intersect(sa, sb);
                assert_eq!(s.sets(si), c.sets(c.intersect(ca, cb)));
                let sd = s.diff(sa, sb);
                assert_eq!(s.sets(sd), c.sets(c.diff(ca, cb)));
                let sj = s.join(sa, sb);
                assert_eq!(s.sets(sj), c.sets(c.join(ca, cb)));
                assert_eq!(s.count(sa), c.count(ca));
                for e in 0..6 {
                    let (on, off) = (s.onset(sa, e), s.offset(sa, e));
                    assert_eq!(s.sets(on), c.sets(c.onset(ca, e)));
                    assert_eq!(s.sets(off), c.sets(c.offset(ca, e)));
                }
            }
        }
    }

    #[test]
    fn terminals_keep_their_ids() {
        let z = ConcurrentZdd::new(4);
        assert!(z.is_empty(ZDD_EMPTY));
        assert!(!z.is_empty(ZDD_UNIT));
        assert_eq!(z.count(ZDD_EMPTY), 0);
        assert_eq!(z.count(ZDD_UNIT), 1);
        assert_eq!(z.allocated_nodes(), 2);
        assert_eq!(z.family(&[vec![]]), ZDD_UNIT);
    }

    #[test]
    fn canonicity_within_one_manager() {
        let z = ConcurrentZdd::new(4);
        let a = z.family(&[vec![0, 2], vec![1]]);
        let b = {
            let x = z.singleton(&[1]);
            let y = z.singleton(&[2, 0]);
            z.union(x, y)
        };
        assert_eq!(a, b, "same family ⇒ same node id");
        assert!(z.unique_hits() > 0, "second build hit the unique table");
    }

    #[test]
    fn canonicity_across_threads() {
        // many threads build the same family; all must get the same id
        let z = Arc::new(ConcurrentZdd::new(8));
        let sets = vec![vec![0, 3], vec![1, 2], vec![4, 7], vec![5], vec![6, 0]];
        let refs: Vec<ZddRef> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let z = Arc::clone(&z);
                    let sets = sets.clone();
                    scope.spawn(move || z.family(&sets))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(refs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(z.count(refs[0]), 5);
    }

    #[test]
    fn concurrent_algebra_is_linearizable() {
        // threads race on overlapping operations; the final sets must be
        // exactly what the serial manager computes
        let z = Arc::new(ConcurrentZdd::new(10));
        let results: Vec<Vec<Vec<usize>>> = std::thread::scope(|scope| {
            (0..8usize)
                .map(|i| {
                    let z = Arc::clone(&z);
                    scope.spawn(move || {
                        let a = z.family(&[vec![i], vec![i, (i + 1) % 10]]);
                        let b = z.family(&[vec![(i + 1) % 10], vec![i]]);
                        let u = z.union(a, b);
                        let d = z.diff(u, b);
                        z.sets(z.join(d, ZDD_UNIT))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (i, got) in results.iter().enumerate() {
            let mut s = Zdd::new(10);
            let a = s.family(&[vec![i], vec![i, (i + 1) % 10]]);
            let b = s.family(&[vec![(i + 1) % 10], vec![i]]);
            let u = s.union(a, b);
            let d = s.diff(u, b);
            let j = s.join(d, ZDD_UNIT);
            let want = s.sets(j);
            assert_eq!(&want, got, "thread {i}");
        }
    }

    #[test]
    fn stats_counters_track_work() {
        let z = ConcurrentZdd::new(6);
        let a = z.family(&[vec![0, 1], vec![2, 3]]);
        let b = z.family(&[vec![2, 3], vec![4, 5]]);
        let u1 = z.union(a, b);
        let u2 = z.union(a, b); // memoized
        assert_eq!(u1, u2);
        assert!(z.op_cache_hits() > 0);
        assert!(z.allocated_nodes() > 2);
        let before = z.allocated_nodes();
        let _again = z.family(&[vec![0, 1], vec![2, 3]]);
        assert_eq!(z.allocated_nodes(), before, "no new nodes for a rebuild");
        assert!(z.unique_hits() > 0);
    }

    #[test]
    fn product_families_stay_linear() {
        let z = ConcurrentZdd::new(16);
        let mut f = ZDD_UNIT;
        for i in 0..8 {
            let pair = z.family(&[vec![2 * i], vec![2 * i + 1]]);
            f = z.join(f, pair);
        }
        assert_eq!(z.count(f), 256);
        assert!(z.size(f) <= 16, "ZDD stays linear: {} nodes", z.size(f));
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentZdd>();
    }

    #[test]
    fn export_import_round_trips_across_manager_kinds() {
        let c = ConcurrentZdd::new(6);
        let a = c.family(&[vec![0, 2], vec![1], vec![3, 4, 5], vec![]]);
        let b = c.family(&[vec![1], vec![2, 5]]);
        let (table, roots) = c.export(&[a, b, ZDD_EMPTY, ZDD_UNIT]);

        // concurrent → concurrent (fresh manager)
        let fresh = ConcurrentZdd::new(6);
        let imported = fresh.import(&table, &roots).unwrap();
        assert_eq!(fresh.sets(imported[0]), c.sets(a));
        assert_eq!(fresh.sets(imported[1]), c.sets(b));
        assert_eq!(imported[2], ZDD_EMPTY);
        assert_eq!(imported[3], ZDD_UNIT);

        // concurrent → concurrent (same manager): canonical refs come back
        let again = c.import(&table, &roots).unwrap();
        assert_eq!(again, vec![a, b, ZDD_EMPTY, ZDD_UNIT]);

        // concurrent → serial: the format is manager-independent
        let mut s = Zdd::new(6);
        let serial = s.import(&table, &roots).unwrap();
        assert_eq!(s.sets(serial[0]), c.sets(a));
        assert_eq!(s.sets(serial[1]), c.sets(b));
    }

    #[test]
    fn import_rejects_malformed_tables() {
        let c = ConcurrentZdd::new(3);
        assert!(c.import(&[(7, 0, 1)], &[2]).is_err(), "var out of universe");
        assert!(c.import(&[(0, 2, 1)], &[2]).is_err(), "forward reference");
        assert!(c.import(&[(0, 1, 0)], &[2]).is_err(), "zero-suppression");
        assert!(c.import(&[(0, 0, 1)], &[9]).is_err(), "root out of range");
    }

    #[test]
    fn tiny_cache_capacity_evicts_but_preserves_results() {
        // a capacity-starved manager must still compute the exact same
        // canonical families as an unconstrained one
        let tiny = ConcurrentZdd::with_cache_capacity(10, 2);
        let roomy = ConcurrentZdd::new(10);
        for a in zoo() {
            for b in zoo() {
                let (ta, tb) = (tiny.family(&a), tiny.family(&b));
                let (ra, rb) = (roomy.family(&a), roomy.family(&b));
                assert_eq!(
                    tiny.sets(tiny.union(ta, tb)),
                    roomy.sets(roomy.union(ra, rb))
                );
                assert_eq!(tiny.sets(tiny.join(ta, tb)), roomy.sets(roomy.join(ra, rb)));
                assert_eq!(tiny.sets(tiny.diff(ta, tb)), roomy.sets(roomy.diff(ra, rb)));
            }
        }
        assert!(
            tiny.op_cache_evictions() > 0,
            "a 2-entry cache must rotate generations under this load"
        );
        assert_eq!(
            roomy.op_cache_evictions(),
            0,
            "default capacity never fills on toy families"
        );
    }

    #[test]
    fn promoted_entries_survive_a_rotation() {
        let z = ConcurrentZdd::with_cache_capacity(8, 4);
        let a = z.family(&[vec![0, 1], vec![2, 3]]);
        let b = z.family(&[vec![2, 3], vec![4, 5]]);
        let u1 = z.union(a, b);
        // churn the caches well past several rotations
        for i in 0..6 {
            let x = z.family(&[vec![i], vec![i + 1, i + 2]]);
            let y = z.family(&[vec![i + 1], vec![i, i + 2]]);
            let _ = z.join(x, y);
        }
        // the result is identical whether it was re-memoized or recomputed
        assert_eq!(z.union(a, b), u1);
    }
}
