//! # symbolic — from-scratch decision-diagram engines and symbolic
//! reachability for safe Petri nets
//!
//! This crate is the workspace's stand-in for the **SMV** column of the
//! paper's Table 1, plus the set-family machinery the generalized analysis
//! can use:
//!
//! * [`Bdd`] — a reduced ordered BDD manager (Bryant [2]): hash-consed
//!   nodes, memoized ITE, quantification, relational product, renaming,
//!   model counting;
//! * [`Zdd`] — a zero-suppressed DD manager (set families) with union /
//!   intersection / difference / onset / offset / join, used as the shared
//!   representation behind large valid-set relations;
//! * [`ConcurrentZdd`] — the `Send + Sync` sharded-lock sibling of [`Zdd`]
//!   (same canonical structure, `&self` operations), shareable across the
//!   worker threads of a parallel exploration;
//! * [`SymbolicReachability`] — BDD-based breadth-first reachability and
//!   deadlock detection with peak-node tracking, in either an interleaved
//!   or a deliberately bad variable order (for the ablation bench).
//!
//! # Example
//!
//! ```
//! use symbolic::SymbolicReachability;
//!
//! let sym = SymbolicReachability::explore(&models::nsdp(2));
//! assert_eq!(sym.state_count(), 18.0); // Table 1: NSDP(2)
//! assert!(sym.has_deadlock());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd;
mod czdd;
mod reach;
mod zdd;

pub use bdd::{Bdd, BddRef, BDD_FALSE, BDD_TRUE};
pub use czdd::ConcurrentZdd;
pub use reach::{SymbolicOptions, SymbolicReachability, VariableOrder};
pub use zdd::{Zdd, ZddRef, ZDD_EMPTY, ZDD_UNIT};
