//! Symbolic reachability analysis of safe Petri nets (the SMV stand-in).
//!
//! Each place gets a current-state variable and a next-state variable,
//! interleaved in the order (`x_p ↦ 2p`, `x'_p ↦ 2p+1`) — the standard
//! encoding that keeps the transition relation small. The transition
//! relation is kept *partitioned* (one BDD per Petri net transition, each
//! with full frame conditions); images are computed per partition with
//! `and_exists` and united.
//!
//! The paper's Table 1 reports **peak BDD size** for SMV; we report the
//! high-water mark of live nodes (reached set + frontier + relation
//! partitions) across iterations, plus total allocation.

use std::time::{Duration, Instant};

use petri::property::{CompiledAtom, CompiledFormula, CompiledProperty};
use petri::{Budget, CoverageStats, Marking, Outcome, PetriNet, PlaceId};

use crate::bdd::{Bdd, BddRef, BDD_FALSE, BDD_TRUE};

/// Approximate bytes per allocated BDD node (node record plus its share of
/// the unique-table and cache entries) — the unit of budget byte accounting.
const BDD_NODE_BYTES: usize = 32;

/// How place indices map to BDD variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariableOrder {
    /// Current and next variables interleaved per place (`x_p = 2p`,
    /// `x'_p = 2p+1`) — the standard, usually good order.
    #[default]
    Interleaved,
    /// All current variables first, then all next variables — a known-bad
    /// order kept for the ablation benchmark.
    CurrentThenNext,
}

/// Options for [`SymbolicReachability::explore_with`].
#[derive(Debug, Clone)]
pub struct SymbolicOptions {
    /// Variable ordering scheme.
    pub order: VariableOrder,
    /// Abort the fixpoint once this many BDD nodes have been allocated;
    /// the result is then a lower bound flagged as
    /// [`truncated`](SymbolicReachability::truncated) — the analogue of
    /// the paper's "> 24 hours" SMV entries.
    pub max_nodes: usize,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            order: VariableOrder::default(),
            max_nodes: usize::MAX,
        }
    }
}

/// Result of a symbolic (BDD-based) reachability analysis.
///
/// # Examples
///
/// ```
/// use symbolic::SymbolicReachability;
///
/// let net = models::figures::fig2(4);
/// let sym = SymbolicReachability::explore(&net);
/// assert_eq!(sym.state_count(), 81.0); // 3^4 states
/// assert!(sym.has_deadlock());
/// ```
#[derive(Debug)]
pub struct SymbolicReachability {
    state_count: f64,
    has_deadlock: bool,
    deadlock_count: f64,
    deadlock_witness: Option<Marking>,
    peak_live_nodes: usize,
    allocated_nodes: usize,
    iterations: usize,
    truncated: bool,
    elapsed: Duration,
}

struct Encoding {
    bdd: Bdd,
    /// current-state variable per place
    cur: Vec<usize>,
    /// next-state variable per place
    nxt: Vec<usize>,
    /// rename map next → current
    rename_map: Vec<usize>,
    /// sorted list of current variables (quantified in images)
    cur_sorted: Vec<usize>,
}

impl Encoding {
    fn new(net: &PetriNet, order: VariableOrder) -> Self {
        let p = net.place_count();
        let bdd = Bdd::new(2 * p);
        let (cur, nxt): (Vec<usize>, Vec<usize>) = match order {
            VariableOrder::Interleaved => (
                (0..p).map(|i| 2 * i).collect(),
                (0..p).map(|i| 2 * i + 1).collect(),
            ),
            VariableOrder::CurrentThenNext => ((0..p).collect(), (0..p).map(|i| p + i).collect()),
        };
        let mut rename_map = vec![0usize; 2 * p];
        for i in 0..p {
            rename_map[nxt[i]] = cur[i];
        }
        let mut cur_sorted = cur.clone();
        cur_sorted.sort_unstable();
        Encoding {
            bdd,
            cur,
            nxt,
            rename_map,
            cur_sorted,
        }
    }

    fn marking_bdd(&mut self, m: &Marking, place_count: usize) -> BddRef {
        let mut f = BDD_TRUE;
        // conjoin from the highest variable down for linear-size build
        let mut lits: Vec<(usize, bool)> = (0..place_count)
            .map(|p| (self.cur[p], m.is_marked(PlaceId::new(p))))
            .collect();
        lits.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        for (v, positive) in lits {
            let lit = if positive {
                self.bdd.var(v)
            } else {
                self.bdd.nvar(v)
            };
            f = self.bdd.and(lit, f);
        }
        f
    }

    /// Transition relation of one Petri net transition, with frame
    /// conditions for untouched places.
    fn relation(&mut self, net: &PetriNet, t: petri::TransitionId) -> BddRef {
        let p = net.place_count();
        let pre = net.pre_place_set(t);
        let post = net.post_place_set(t);
        // conjoin per-place constraints from the highest place index down —
        // with the interleaved order this builds bottom-up, keeping
        // intermediate BDDs small
        let mut f = BDD_TRUE;
        for i in (0..p).rev() {
            let xc = self.bdd.var(self.cur[i]);
            let xn = self.bdd.var(self.nxt[i]);
            let in_pre = pre.contains(i);
            let in_post = post.contains(i);
            let g = match (in_pre, in_post) {
                (true, true) => self.bdd.and(xc, xn), // marked and stays marked
                (true, false) => {
                    let nn = self.bdd.not(xn);
                    self.bdd.and(xc, nn)
                }
                (false, true) => {
                    // safeness: the target place must be empty before
                    let nc = self.bdd.not(xc);
                    self.bdd.and(nc, xn)
                }
                (false, false) => self.bdd.iff(xc, xn),
            };
            f = self.bdd.and(g, f);
        }
        f
    }

    /// Extracts one satisfying assignment of `f` over the current-state
    /// variables and decodes it as a marking (unassigned variables default
    /// to "empty place").
    fn witness_marking(&mut self, f: BddRef, net: &PetriNet) -> Option<Marking> {
        let cube = self.bdd.some_cube(f)?;
        Some(Marking::from_places(
            net.place_count(),
            net.places()
                .filter(|p| cube.get(self.cur[p.index()]).copied().flatten() == Some(true)),
        ))
    }

    fn image(&mut self, rel: BddRef, from: BddRef) -> BddRef {
        let cur_vars = self.cur_sorted.clone();
        let next_only = self.bdd.and_exists(rel, from, &cur_vars);
        self.bdd.rename(next_only, &self.rename_map)
    }

    /// Characteristic function of "no transition enabled" over the
    /// current-state variables.
    fn no_enabled_bdd(&mut self, net: &PetriNet) -> BddRef {
        let mut no_enabled = BDD_TRUE;
        for t in net.transitions() {
            let mut en = BDD_TRUE;
            for &pl in net.pre_places(t) {
                let v = self.bdd.var(self.cur[pl.index()]);
                en = self.bdd.and(en, v);
            }
            let nen = self.bdd.not(en);
            no_enabled = self.bdd.and(no_enabled, nen);
        }
        no_enabled
    }

    /// Characteristic function of a compiled property formula over the
    /// current-state variables. On a safe net every `m(p) <op> k` atom
    /// collapses to a constant or a (negated) place literal, since a
    /// place holds zero or one tokens.
    fn formula_bdd(&mut self, net: &PetriNet, f: &CompiledFormula) -> BddRef {
        match f {
            CompiledFormula::Atom(CompiledAtom::Deadlock) => self.no_enabled_bdd(net),
            CompiledFormula::Atom(CompiledAtom::Fireable(t)) => {
                let mut en = BDD_TRUE;
                for &pl in net.pre_places(*t) {
                    let v = self.bdd.var(self.cur[pl.index()]);
                    en = self.bdd.and(en, v);
                }
                en
            }
            CompiledFormula::Atom(CompiledAtom::Count { place, op, k }) => {
                match (op.eval(0, *k), op.eval(1, *k)) {
                    (true, true) => BDD_TRUE,
                    (false, false) => BDD_FALSE,
                    (false, true) => self.bdd.var(self.cur[place.index()]),
                    (true, false) => self.bdd.nvar(self.cur[place.index()]),
                }
            }
            CompiledFormula::Not(x) => {
                let g = self.formula_bdd(net, x);
                self.bdd.not(g)
            }
            CompiledFormula::And(a, b) => {
                let fa = self.formula_bdd(net, a);
                let fb = self.formula_bdd(net, b);
                self.bdd.and(fa, fb)
            }
            CompiledFormula::Or(a, b) => {
                let fa = self.formula_bdd(net, a);
                let fb = self.formula_bdd(net, b);
                self.bdd.or(fa, fb)
            }
        }
    }

    /// Characteristic function of the **goal predicate** of `property`
    /// (φ under `EF`, ¬φ under `AG`) over the current-state variables.
    fn goal_bdd(&mut self, net: &PetriNet, property: &CompiledProperty) -> BddRef {
        let phi = self.formula_bdd(net, &property.formula);
        match property.quantifier {
            petri::property::Quantifier::Ef => phi,
            petri::property::Quantifier::Ag => self.bdd.not(phi),
        }
    }
}

/// Converts a satisfying-assignment count to a `usize` for budget
/// comparisons, saturating on counts past `usize::MAX`.
fn sat_count_usize(count: f64) -> usize {
    if count >= usize::MAX as f64 {
        usize::MAX
    } else {
        count as usize
    }
}

impl SymbolicReachability {
    /// Runs symbolic reachability with the default interleaved order.
    pub fn explore(net: &PetriNet) -> Self {
        Self::explore_with(net, &SymbolicOptions::default())
    }

    /// Runs symbolic reachability with explicit options.
    ///
    /// Note: unlike the explicit engines this never errors — an unsafe net
    /// simply has its unsafe successors suppressed by the encoding (token
    /// production requires the target place to be empty), mirroring how a
    /// bounded model checker would encode a safe net.
    pub fn explore_with(net: &PetriNet, opts: &SymbolicOptions) -> Self {
        Self::explore_bounded(net, opts, &Budget::default()).into_value()
    }

    /// Runs symbolic reachability under a cooperative resource [`Budget`].
    ///
    /// Budget checks run once per breadth-first iteration: the state axis
    /// compares the satisfying-assignment count of the reached set, the
    /// byte axis the number of allocated BDD nodes (≈ 32 bytes each). On
    /// exhaustion the fixpoint stops early and the result (a lower bound,
    /// also flagged [`truncated`](Self::truncated)) is wrapped in
    /// [`Outcome::Partial`]. Every state in a partial reached set is
    /// genuinely reachable, so a deadlock found there is a real one.
    pub fn explore_bounded(
        net: &PetriNet,
        opts: &SymbolicOptions,
        budget: &Budget,
    ) -> Outcome<Self> {
        Self::explore_inner(net, opts, budget, None)
    }

    /// Like [`SymbolicReachability::explore_bounded`], but searches for
    /// markings satisfying the **goal predicate** of `property` (φ under
    /// `EF`, ¬φ under `AG`) instead of dead markings. The deadlock-named
    /// accessors ([`has_deadlock`](Self::has_deadlock),
    /// [`deadlock_count`](Self::deadlock_count),
    /// [`deadlock_witness`](Self::deadlock_witness)) then describe goal
    /// markings. With the default property (`EF deadlock`) this is exactly
    /// [`SymbolicReachability::explore_bounded`].
    pub fn explore_goal_bounded(
        net: &PetriNet,
        opts: &SymbolicOptions,
        budget: &Budget,
        property: &CompiledProperty,
    ) -> Outcome<Self> {
        Self::explore_inner(net, opts, budget, Some(property))
    }

    fn explore_inner(
        net: &PetriNet,
        opts: &SymbolicOptions,
        budget: &Budget,
        goal: Option<&CompiledProperty>,
    ) -> Outcome<Self> {
        let start = Instant::now();
        let mut enc = Encoding::new(net, opts.order);
        let p = net.place_count();

        let relations: Vec<BddRef> = net.transitions().map(|t| enc.relation(net, t)).collect();
        let rel_nodes: usize = relations.iter().map(|&r| enc.bdd.size(r)).sum();

        let init = enc.marking_bdd(net.initial_marking(), p);
        let mut reached = init;
        let mut frontier = init;
        let mut peak = rel_nodes + enc.bdd.size(reached);
        let mut iterations = 0;
        let mut truncated = false;
        let mut exhausted = None;

        while frontier != BDD_FALSE {
            if enc.bdd.allocated_nodes() > opts.max_nodes {
                truncated = true;
                break;
            }
            let states_so_far = sat_count_usize(enc.bdd.sat_count_over(reached, p));
            if let Some(reason) =
                budget.exceeded(states_so_far, enc.bdd.allocated_nodes() * BDD_NODE_BYTES)
            {
                truncated = true;
                exhausted = Some(reason);
                break;
            }
            iterations += 1;
            let mut next = BDD_FALSE;
            for &r in &relations {
                let img = enc.image(r, frontier);
                next = enc.bdd.or(next, img);
            }
            frontier = enc.bdd.diff(next, reached);
            reached = enc.bdd.or(reached, frontier);
            peak = peak.max(rel_nodes + enc.bdd.size(reached) + enc.bdd.size(frontier));
        }

        // goal states: reached ∧ goal predicate (default: no transition
        // enabled, i.e. dead)
        let target = match goal {
            None => enc.no_enabled_bdd(net),
            Some(property) => enc.goal_bdd(net, property),
        };
        let dead = enc.bdd.and(reached, target);
        let deadlock_witness = enc.witness_marking(dead, net);

        let elapsed = start.elapsed();
        let result = SymbolicReachability {
            state_count: enc.bdd.sat_count_over(reached, p),
            has_deadlock: dead != BDD_FALSE,
            deadlock_count: enc.bdd.sat_count_over(dead, p),
            deadlock_witness,
            peak_live_nodes: peak,
            allocated_nodes: enc.bdd.allocated_nodes(),
            iterations,
            truncated,
            elapsed,
        };
        match exhausted {
            None => Outcome::Complete(result),
            Some(reason) => {
                let stored = sat_count_usize(result.state_count);
                let on_frontier = sat_count_usize(enc.bdd.sat_count_over(frontier, p));
                let coverage = CoverageStats {
                    states_stored: stored,
                    states_expanded: stored.saturating_sub(on_frontier),
                    frontier_len: on_frontier,
                    bytes_estimate: enc.bdd.allocated_nodes() * BDD_NODE_BYTES,
                    elapsed,
                };
                Outcome::Partial {
                    result,
                    // re-classify at the stop: a cancel raised while the
                    // reason was latched must win deterministically
                    reason: budget.stop_reason(reason),
                    coverage,
                }
            }
        }
    }

    /// Number of reachable states (exact while below 2⁵³).
    pub fn state_count(&self) -> f64 {
        self.state_count
    }

    /// `true` if a reachable marking enables no transition.
    pub fn has_deadlock(&self) -> bool {
        self.has_deadlock
    }

    /// Number of dead reachable markings.
    pub fn deadlock_count(&self) -> f64 {
        self.deadlock_count
    }

    /// High-water mark of live BDD nodes (relation partitions + reached +
    /// frontier) — the analogue of the paper's "Peak BDD-size" column.
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live_nodes
    }

    /// Total nodes allocated by the manager over the whole run.
    pub fn allocated_nodes(&self) -> usize {
        self.allocated_nodes
    }

    /// Number of breadth-first image iterations until the fixpoint.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `true` if the node budget was exhausted before the fixpoint; the
    /// reported counts are then lower bounds.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// One dead reachable marking decoded from the symbolic deadlock set,
    /// if a deadlock exists.
    pub fn deadlock_witness(&self) -> Option<&Marking> {
        self.deadlock_witness.as_ref()
    }

    /// Wall-clock analysis time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petri::{NetBuilder, ReachabilityGraph};

    fn strands(n: usize) -> PetriNet {
        let mut b = NetBuilder::new("strands");
        for i in 0..n {
            let p = b.place_marked(format!("p{i}"));
            let q = b.place(format!("q{i}"));
            b.transition(format!("t{i}"), [p], [q]);
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_match_explicit_on_strands() {
        for n in 1..=5 {
            let net = strands(n);
            let sym = SymbolicReachability::explore(&net);
            let exp = ReachabilityGraph::explore(&net).unwrap();
            assert_eq!(sym.state_count(), exp.state_count() as f64, "n={n}");
            assert_eq!(sym.has_deadlock(), exp.has_deadlock());
        }
    }

    #[test]
    fn deadlock_count_matches_explicit() {
        let net = strands(3);
        let sym = SymbolicReachability::explore(&net);
        let exp = ReachabilityGraph::explore(&net).unwrap();
        assert_eq!(sym.deadlock_count(), exp.deadlocks().len() as f64);
    }

    #[test]
    fn cyclic_net_has_no_deadlock() {
        let mut b = NetBuilder::new("cycle");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("go", [p], [q]);
        b.transition("back", [q], [p]);
        let net = b.build().unwrap();
        let sym = SymbolicReachability::explore(&net);
        assert_eq!(sym.state_count(), 2.0);
        assert!(!sym.has_deadlock());
        assert!(sym.iterations() >= 2);
    }

    #[test]
    fn both_orders_agree_on_counts() {
        let net = strands(4);
        let a = SymbolicReachability::explore_with(
            &net,
            &SymbolicOptions {
                order: VariableOrder::Interleaved,
                ..Default::default()
            },
        );
        let b = SymbolicReachability::explore_with(
            &net,
            &SymbolicOptions {
                order: VariableOrder::CurrentThenNext,
                ..Default::default()
            },
        );
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.has_deadlock(), b.has_deadlock());
    }

    #[test]
    fn deadlock_witness_is_reachable_and_dead() {
        let net = strands(3);
        let sym = SymbolicReachability::explore(&net);
        let w = sym.deadlock_witness().expect("strands terminate");
        assert!(net.is_dead(w));
        let rg = ReachabilityGraph::explore(&net).unwrap();
        assert!(rg.contains(w));
        // deadlock-free nets have no witness
        let mut b = NetBuilder::new("cycle");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("go", [p], [q]);
        b.transition("back", [q], [p]);
        let live = SymbolicReachability::explore(&b.build().unwrap());
        assert!(live.deadlock_witness().is_none());
    }

    #[test]
    fn bounded_fixpoint_returns_partial_lower_bound() {
        use petri::ExhaustionReason;
        let net = strands(6); // 2^6 = 64 states
        let outcome = SymbolicReachability::explore_bounded(
            &net,
            &SymbolicOptions::default(),
            &Budget::default().cap_states(4),
        );
        let Outcome::Partial {
            result,
            reason,
            coverage,
        } = outcome
        else {
            panic!("expected a partial outcome");
        };
        assert_eq!(reason, ExhaustionReason::States);
        assert!(result.truncated(), "partial results are lower bounds");
        assert!(result.state_count() < 64.0);
        assert_eq!(coverage.states_stored, result.state_count() as usize);
        assert!(coverage.bytes_estimate > 0);
    }

    #[test]
    fn cancelled_budget_stops_the_fixpoint() {
        use petri::ExhaustionReason;
        let budget = Budget::default();
        budget.cancel();
        let outcome = SymbolicReachability::explore_bounded(
            &strands(4),
            &SymbolicOptions::default(),
            &budget,
        );
        assert_eq!(outcome.reason(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn goal_search_matches_explicit_evaluation() {
        use petri::Property;
        let net = strands(3);
        let rg = ReachabilityGraph::explore(&net).unwrap();
        for text in [
            "EF m(q0) >= 1 and m(q1) >= 1",
            "AG m(q2) = 0",
            "EF fireable(t1)",
            "AG not (m(q0) >= 1 and m(q1) >= 1 and m(q2) >= 1)",
            "EF deadlock",
        ] {
            let compiled = Property::parse(text).unwrap().compile(&net).unwrap();
            let sym = SymbolicReachability::explore_goal_bounded(
                &net,
                &SymbolicOptions::default(),
                &Budget::default(),
                &compiled,
            )
            .into_value();
            let expected: Vec<_> = rg
                .states()
                .filter(|&s| compiled.goal(&net, rg.marking(s)))
                .collect();
            assert_eq!(sym.has_deadlock(), !expected.is_empty(), "{text}");
            assert_eq!(sym.deadlock_count(), expected.len() as f64, "{text}");
            match sym.deadlock_witness() {
                Some(w) => {
                    assert!(compiled.goal(&net, w), "{text}");
                    assert!(rg.contains(w), "{text}");
                }
                None => assert!(expected.is_empty(), "{text}"),
            }
        }
    }

    #[test]
    fn default_goal_is_plain_deadlock_search() {
        use petri::Property;
        let net = strands(4);
        let compiled = Property::deadlock().compile(&net).unwrap();
        let plain = SymbolicReachability::explore(&net);
        let goal = SymbolicReachability::explore_goal_bounded(
            &net,
            &SymbolicOptions::default(),
            &Budget::default(),
            &compiled,
        )
        .into_value();
        assert_eq!(goal.state_count(), plain.state_count());
        assert_eq!(goal.deadlock_count(), plain.deadlock_count());
        assert_eq!(goal.deadlock_witness(), plain.deadlock_witness());
    }

    #[test]
    fn peak_is_at_least_relation_size() {
        let net = strands(3);
        let sym = SymbolicReachability::explore(&net);
        assert!(sym.peak_live_nodes() > 0);
        assert!(sym.allocated_nodes() >= sym.peak_live_nodes() / 2);
    }
}
