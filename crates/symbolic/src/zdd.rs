//! A zero-suppressed decision diagram (ZDD) engine for set families.
//!
//! ZDDs (Minato) canonically represent *families of sets* over a fixed
//! element universe — exactly the shape of Generalized Petri Net markings
//! (`P → 2^(2^T)`) and valid-set relations. Where an explicit family stores
//! each transition set separately, a ZDD shares common sub-structure, which
//! is what makes valid-set relations with exponentially many members
//! tractable.
//!
//! Terminals: ⊥ = the empty family, ⊤ = the family containing only the
//! empty set. A node `(v, lo, hi)` represents `lo ∪ {s ∪ {v} | s ∈ hi}`
//! with the zero-suppression rule `hi = ⊥ ⇒ node ≡ lo`.

use std::collections::HashMap;

/// Index of a ZDD node within its manager ([`Zdd`] or
/// [`ConcurrentZdd`](crate::ConcurrentZdd)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZddRef(u32);

impl ZddRef {
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Wraps a raw node id (manager-specific encoding).
    pub(crate) fn from_raw(raw: u32) -> Self {
        ZddRef(raw)
    }

    /// The raw node id.
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

/// The empty family `∅`.
pub const ZDD_EMPTY: ZddRef = ZddRef(0);
/// The family `{∅}` containing just the empty set.
pub const ZDD_UNIT: ZddRef = ZddRef(1);

pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: ZddRef,
    pub(crate) hi: ZddRef,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Union,
    Intersect,
    Diff,
    Join,
}

/// A ZDD manager: owns the node store and operation caches.
///
/// # Examples
///
/// ```
/// use symbolic::{Zdd, ZDD_UNIT};
///
/// let mut z = Zdd::new(3);
/// // family {{0,1},{2}}
/// let a = z.family(&[vec![0, 1], vec![2]]);
/// let b = z.family(&[vec![2], vec![0]]);
/// let u = z.union(a, b);
/// assert_eq!(z.count(u), 3);
/// let i = z.intersect(a, b);
/// assert_eq!(z.sets(i), vec![vec![2]]);
/// ```
#[derive(Debug)]
pub struct Zdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, ZddRef, ZddRef), ZddRef>,
    op_cache: HashMap<(Op, ZddRef, ZddRef), ZddRef>,
    nvars: u32,
}

impl Zdd {
    /// Creates a manager over elements `0..nvars`.
    pub fn new(nvars: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: ZDD_EMPTY,
                hi: ZDD_EMPTY,
            },
            Node {
                var: TERMINAL_VAR,
                lo: ZDD_UNIT,
                hi: ZDD_UNIT,
            },
        ];
        Zdd {
            nodes,
            unique: HashMap::new(),
            op_cache: HashMap::new(),
            nvars: u32::try_from(nvars).expect("element count fits in u32"),
        }
    }

    /// Number of elements in the universe.
    pub fn var_count(&self) -> usize {
        self.nvars as usize
    }

    /// Total nodes ever allocated (terminals included).
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn var_of(&self, f: ZddRef) -> u32 {
        self.nodes[f.index()].var
    }

    fn mk(&mut self, var: u32, lo: ZddRef, hi: ZddRef) -> ZddRef {
        if hi == ZDD_EMPTY {
            return lo; // zero-suppression
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            self.nodes.push(Node { var, lo, hi });
            ZddRef(u32::try_from(self.nodes.len() - 1).expect("node count fits in u32"))
        })
    }

    /// The family containing exactly one set (given as element indices).
    ///
    /// # Panics
    ///
    /// Panics if an element is outside the universe.
    pub fn singleton(&mut self, set: &[usize]) -> ZddRef {
        let mut sorted: Vec<usize> = set.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut cur = ZDD_UNIT;
        for &e in sorted.iter().rev() {
            assert!((e as u32) < self.nvars, "element {e} out of universe");
            cur = self.mk(e as u32, ZDD_EMPTY, cur);
        }
        cur
    }

    /// The family containing each of the given sets.
    pub fn family(&mut self, sets: &[Vec<usize>]) -> ZddRef {
        let mut acc = ZDD_EMPTY;
        for s in sets {
            let one = self.singleton(s);
            acc = self.union(acc, one);
        }
        acc
    }

    /// Family union `f ∪ g`.
    pub fn union(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == g || g == ZDD_EMPTY {
            return f;
        }
        if f == ZDD_EMPTY {
            return g;
        }
        if let Some(&r) = self.op_cache.get(&(Op::Union, f, g)) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.union(f0, g0);
        let hi = self.union(f1, g1);
        let r = self.mk(top, lo, hi);
        self.op_cache.insert((Op::Union, f, g), r);
        self.op_cache.insert((Op::Union, g, f), r);
        r
    }

    /// Family intersection `f ∩ g` (sets belonging to both families).
    pub fn intersect(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == g {
            return f;
        }
        if f == ZDD_EMPTY || g == ZDD_EMPTY {
            return ZDD_EMPTY;
        }
        if let Some(&r) = self.op_cache.get(&(Op::Intersect, f, g)) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let r = if vf == vg {
            let (f0, f1) = self.cofactors(f, vf);
            let (g0, g1) = self.cofactors(g, vf);
            let lo = self.intersect(f0, g0);
            let hi = self.intersect(f1, g1);
            self.mk(vf, lo, hi)
        } else if vf < vg {
            // sets in f containing vf cannot be in g
            let f0 = self.nodes[f.index()].lo;
            self.intersect(f0, g)
        } else {
            let g0 = self.nodes[g.index()].lo;
            self.intersect(f, g0)
        };
        self.op_cache.insert((Op::Intersect, f, g), r);
        self.op_cache.insert((Op::Intersect, g, f), r);
        r
    }

    /// Family difference `f \ g` (sets of `f` not in `g`).
    pub fn diff(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == ZDD_EMPTY || f == g {
            return ZDD_EMPTY;
        }
        if g == ZDD_EMPTY {
            return f;
        }
        if let Some(&r) = self.op_cache.get(&(Op::Diff, f, g)) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let r = if vf == vg {
            let (f0, f1) = self.cofactors(f, vf);
            let (g0, g1) = self.cofactors(g, vf);
            let lo = self.diff(f0, g0);
            let hi = self.diff(f1, g1);
            self.mk(vf, lo, hi)
        } else if vf < vg {
            let node = self.nodes[f.index()];
            let lo = self.diff(node.lo, g);
            self.mk(vf, lo, node.hi)
        } else {
            let g0 = self.nodes[g.index()].lo;
            self.diff(f, g0)
        };
        self.op_cache.insert((Op::Diff, f, g), r);
        r
    }

    fn cofactors(&self, f: ZddRef, var: u32) -> (ZddRef, ZddRef) {
        let n = self.nodes[f.index()];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, ZDD_EMPTY)
        }
    }

    /// The sub-family of sets **containing** element `e` (sets keep `e`).
    pub fn onset(&mut self, f: ZddRef, e: usize) -> ZddRef {
        let e = e as u32;
        self.onset_rec(f, e)
    }

    fn onset_rec(&mut self, f: ZddRef, e: u32) -> ZddRef {
        let v = self.var_of(f);
        if v > e {
            // e cannot occur below (vars increase downward)
            return ZDD_EMPTY;
        }
        let n = self.nodes[f.index()];
        if v == e {
            return self.mk(e, ZDD_EMPTY, n.hi);
        }
        let lo = self.onset_rec(n.lo, e);
        let hi = self.onset_rec(n.hi, e);
        self.mk(n.var, lo, hi)
    }

    /// The sub-family of sets **not containing** element `e`.
    pub fn offset(&mut self, f: ZddRef, e: usize) -> ZddRef {
        let e = e as u32;
        self.offset_rec(f, e)
    }

    fn offset_rec(&mut self, f: ZddRef, e: u32) -> ZddRef {
        let v = self.var_of(f);
        if v > e {
            return f;
        }
        let n = self.nodes[f.index()];
        if v == e {
            return n.lo;
        }
        let lo = self.offset_rec(n.lo, e);
        let hi = self.offset_rec(n.hi, e);
        self.mk(n.var, lo, hi)
    }

    /// The cross-join `f ⊔ g = {a ∪ b | a ∈ f, b ∈ g}`.
    pub fn join(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        if f == ZDD_EMPTY || g == ZDD_EMPTY {
            return ZDD_EMPTY;
        }
        if f == ZDD_UNIT {
            return g;
        }
        if g == ZDD_UNIT {
            return f;
        }
        if let Some(&r) = self.op_cache.get(&(Op::Join, f, g)) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        // sets with `top`: f1⊔g1 ∪ f1⊔g0 ∪ f0⊔g1; without: f0⊔g0
        let a = self.join(f1, g1);
        let b = self.join(f1, g0);
        let c = self.join(f0, g1);
        let hi = {
            let ab = self.union(a, b);
            self.union(ab, c)
        };
        let lo = self.join(f0, g0);
        let r = self.mk(top, lo, hi);
        self.op_cache.insert((Op::Join, f, g), r);
        self.op_cache.insert((Op::Join, g, f), r);
        r
    }

    /// Number of sets in the family, exact up to `u128::MAX` (saturating
    /// beyond — a family over ≤ 128 elements can never saturate).
    pub fn count(&self, f: ZddRef) -> u128 {
        let mut cache: HashMap<ZddRef, u128> = HashMap::new();
        self.count_rec(f, &mut cache)
    }

    /// Approximate set count as a float, for display of astronomically
    /// large families (loses precision above 2⁵³).
    pub fn count_f64(&self, f: ZddRef) -> f64 {
        self.count(f) as f64
    }

    fn count_rec(&self, f: ZddRef, cache: &mut HashMap<ZddRef, u128>) -> u128 {
        if f == ZDD_EMPTY {
            return 0;
        }
        if f == ZDD_UNIT {
            return 1;
        }
        if let Some(&c) = cache.get(&f) {
            return c;
        }
        let n = self.nodes[f.index()];
        let c = self
            .count_rec(n.lo, cache)
            .saturating_add(self.count_rec(n.hi, cache));
        cache.insert(f, c);
        c
    }

    /// `true` if `f` is the empty family.
    pub fn is_empty(&self, f: ZddRef) -> bool {
        f == ZDD_EMPTY
    }

    /// Membership test: is `set` one of the family's sets?
    pub fn contains_set(&self, f: ZddRef, set: &[usize]) -> bool {
        let mut sorted: Vec<u32> = set.iter().map(|&e| e as u32).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut cur = f;
        let mut i = 0;
        loop {
            if cur == ZDD_EMPTY {
                return false;
            }
            if cur == ZDD_UNIT {
                return i == sorted.len();
            }
            let n = self.nodes[cur.index()];
            if i < sorted.len() && sorted[i] == n.var {
                cur = n.hi;
                i += 1;
            } else if i < sorted.len() && sorted[i] < n.var {
                return false; // required element cannot occur anymore
            } else {
                cur = n.lo;
            }
        }
    }

    /// Materializes every set of the family, each sorted ascending; the
    /// family itself is returned in lexicographic order.
    pub fn sets(&self, f: ZddRef) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.sets_rec(f, &mut prefix, &mut out);
        out.sort();
        out
    }

    fn sets_rec(&self, f: ZddRef, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if f == ZDD_EMPTY {
            return;
        }
        if f == ZDD_UNIT {
            out.push(prefix.clone());
            return;
        }
        let n = self.nodes[f.index()];
        self.sets_rec(n.lo, prefix, out);
        prefix.push(n.var as usize);
        self.sets_rec(n.hi, prefix, out);
        prefix.pop();
    }

    /// Materializes at most `k` sets of the family (depth-first order) —
    /// cheap even when the family is astronomically large.
    pub fn some_sets(&self, f: ZddRef, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.some_sets_rec(f, k, &mut prefix, &mut out);
        out
    }

    fn some_sets_rec(
        &self,
        f: ZddRef,
        k: usize,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= k || f == ZDD_EMPTY {
            return;
        }
        if f == ZDD_UNIT {
            out.push(prefix.clone());
            return;
        }
        let n = self.nodes[f.index()];
        self.some_sets_rec(n.lo, k, prefix, out);
        if out.len() >= k {
            return;
        }
        prefix.push(n.var as usize);
        self.some_sets_rec(n.hi, k, prefix, out);
        prefix.pop();
    }

    /// Number of distinct nodes reachable from `f` (terminals excluded).
    pub fn size(&self, f: ZddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n == ZDD_EMPTY || n == ZDD_UNIT || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.index()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }

    /// Exports the sub-diagrams rooted at `roots` as a portable node
    /// table: entries are `(var, lo, hi)` in dependency order, children
    /// referring to earlier entries by index. Terminals are implicit at
    /// indices 0 (`∅`) and 1 (`{∅}`); proper nodes are numbered from 2.
    /// Returned alongside are the roots translated to table indices.
    ///
    /// The table is manager-independent: [`import`](Self::import) (on this
    /// or any other manager over the same universe) rebuilds the exact
    /// same families, re-canonicalizing every node id on the way in.
    pub fn export(&self, roots: &[ZddRef]) -> (Vec<(u32, u32, u32)>, Vec<u32>) {
        export_table(|f| self.nodes[f.index()], roots)
    }

    /// Rebuilds families from a node table produced by
    /// [`export`](Self::export), returning one [`ZddRef`] per root. Every
    /// node goes back through hash-consing, so the returned references are
    /// canonical in *this* manager regardless of where the table came from.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation: a variable
    /// outside the universe, a child index referring forward, a
    /// zero-suppression violation (`hi = ∅`), a child variable not strictly
    /// below its parent, or a root index out of range. A table that imports
    /// cleanly always denotes well-formed families.
    pub fn import(
        &mut self,
        table: &[(u32, u32, u32)],
        roots: &[u32],
    ) -> Result<Vec<ZddRef>, String> {
        import_table(self.nvars, |v, lo, hi| self.mk(v, lo, hi), table, roots)
    }
}

/// Shared export walk over any node store (serial or sharded): emits the
/// distinct proper nodes reachable from `roots` in dependency (children
/// first) order.
pub(crate) fn export_table<N: Fn(ZddRef) -> Node>(
    node_of: N,
    roots: &[ZddRef],
) -> (Vec<(u32, u32, u32)>, Vec<u32>) {
    let mut index: HashMap<ZddRef, u32> = HashMap::from([(ZDD_EMPTY, 0), (ZDD_UNIT, 1)]);
    let mut table: Vec<(u32, u32, u32)> = Vec::new();
    for &root in roots {
        let mut stack = vec![(root, false)];
        while let Some((f, children_done)) = stack.pop() {
            if index.contains_key(&f) {
                continue;
            }
            let n = node_of(f);
            if children_done {
                table.push((n.var, index[&n.lo], index[&n.hi]));
                index.insert(f, table.len() as u32 + 1);
            } else {
                stack.push((f, true));
                stack.push((n.hi, false));
                stack.push((n.lo, false));
            }
        }
    }
    let roots_out = roots.iter().map(|r| index[r]).collect();
    (table, roots_out)
}

/// Shared import walk: validates the table structurally and rebuilds each
/// node through the manager's `mk` so references re-canonicalize.
pub(crate) fn import_table<M: FnMut(u32, ZddRef, ZddRef) -> ZddRef>(
    nvars: u32,
    mut mk: M,
    table: &[(u32, u32, u32)],
    roots: &[u32],
) -> Result<Vec<ZddRef>, String> {
    let var_at = |i: usize| -> Option<u32> {
        if i < 2 {
            None // terminal
        } else {
            Some(table[i - 2].0)
        }
    };
    let mut refs: Vec<ZddRef> = vec![ZDD_EMPTY, ZDD_UNIT];
    for (pos, &(var, lo, hi)) in table.iter().enumerate() {
        let id = pos + 2;
        if var >= nvars {
            return Err(format!(
                "node {id}: variable {var} outside universe of {nvars} elements"
            ));
        }
        let (lo, hi) = (lo as usize, hi as usize);
        if lo >= id || hi >= id {
            return Err(format!("node {id}: child index refers forward"));
        }
        if hi == 0 {
            return Err(format!(
                "node {id}: empty hi child violates zero-suppression"
            ));
        }
        for child in [lo, hi] {
            if let Some(cv) = var_at(child) {
                if cv <= var {
                    return Err(format!(
                        "node {id}: child variable {cv} not strictly below {var}"
                    ));
                }
            }
        }
        refs.push(mk(var, refs[lo], refs[hi]));
    }
    let mut out = Vec::with_capacity(roots.len());
    for &r in roots {
        let r = r as usize;
        match refs.get(r) {
            Some(&f) => out.push(f),
            None => {
                return Err(format!(
                    "root index {r} out of range for a table of {} nodes",
                    refs.len()
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_distinct() {
        let z = Zdd::new(2);
        assert!(z.is_empty(ZDD_EMPTY));
        assert!(!z.is_empty(ZDD_UNIT));
        assert_eq!(z.count(ZDD_EMPTY), 0);
        assert_eq!(z.count(ZDD_UNIT), 1);
        assert!(z.contains_set(ZDD_UNIT, &[]));
        assert!(!z.contains_set(ZDD_EMPTY, &[]));
    }

    #[test]
    fn singleton_round_trips() {
        let mut z = Zdd::new(5);
        let s = z.singleton(&[3, 1]);
        assert_eq!(z.count(s), 1);
        assert!(z.contains_set(s, &[1, 3]));
        assert!(!z.contains_set(s, &[1]));
        assert_eq!(z.sets(s), vec![vec![1, 3]]);
    }

    #[test]
    fn duplicate_elements_collapse() {
        let mut z = Zdd::new(4);
        let a = z.singleton(&[2, 2, 0]);
        let b = z.singleton(&[0, 2]);
        assert_eq!(a, b, "canonical form ignores duplicates and order");
    }

    #[test]
    fn union_intersect_diff_algebra() {
        let mut z = Zdd::new(4);
        let f = z.family(&[vec![0], vec![1, 2], vec![3]]);
        let g = z.family(&[vec![1, 2], vec![0, 3]]);
        let u = z.union(f, g);
        assert_eq!(z.count(u), 4);
        let i = z.intersect(f, g);
        assert_eq!(z.sets(i), vec![vec![1, 2]]);
        let d = z.diff(f, g);
        assert_eq!(z.sets(d), vec![vec![0], vec![3]]);
        // f \ g ∪ (f ∩ g) == f
        let back = z.union(d, i);
        assert_eq!(back, f);
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let mut z = Zdd::new(3);
        let f = z.family(&[vec![0], vec![1]]);
        let g = z.family(&[vec![1], vec![2]]);
        assert_eq!(z.union(f, f), f);
        let fg = z.union(f, g);
        let gf = z.union(g, f);
        assert_eq!(fg, gf);
    }

    #[test]
    fn onset_and_offset_partition() {
        let mut z = Zdd::new(4);
        let f = z.family(&[vec![0, 1], vec![1, 2], vec![3], vec![]]);
        let on = z.onset(f, 1);
        assert_eq!(z.sets(on), vec![vec![0, 1], vec![1, 2]]);
        let off = z.offset(f, 1);
        assert_eq!(z.sets(off), vec![vec![], vec![3]]);
        let whole = z.union(on, off);
        assert_eq!(whole, f, "onset ∪ offset == original");
    }

    #[test]
    fn join_is_cross_union() {
        let mut z = Zdd::new(4);
        let f = z.family(&[vec![0], vec![1]]);
        let g = z.family(&[vec![2], vec![3]]);
        let j = z.join(f, g);
        assert_eq!(
            z.sets(j),
            vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]]
        );
        assert_eq!(z.join(f, ZDD_UNIT), f);
        assert_eq!(z.join(f, ZDD_EMPTY), ZDD_EMPTY);
    }

    #[test]
    fn join_merges_overlapping_sets() {
        let mut z = Zdd::new(3);
        let f = z.family(&[vec![0, 1]]);
        let g = z.family(&[vec![1, 2]]);
        let j = z.join(f, g);
        assert_eq!(z.sets(j), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn canonical_equal_families_share_node() {
        let mut z = Zdd::new(4);
        let f = z.family(&[vec![0, 2], vec![1]]);
        let g = {
            let a = z.singleton(&[1]);
            let b = z.singleton(&[2, 0]);
            z.union(a, b)
        };
        assert_eq!(f, g);
    }

    #[test]
    fn sharing_beats_explicit_on_products() {
        // product family {a0|b0} x {a1|b1} x ... has 2^n sets but O(n) nodes
        let mut z = Zdd::new(16);
        let mut f = ZDD_UNIT;
        for i in 0..8 {
            let pair = z.family(&[vec![2 * i], vec![2 * i + 1]]);
            f = z.join(f, pair);
        }
        assert_eq!(z.count(f), 256);
        assert!(z.size(f) <= 16, "ZDD stays linear: {} nodes", z.size(f));
    }

    #[test]
    fn contains_set_rejects_subsets_and_supersets() {
        let mut z = Zdd::new(4);
        let f = z.family(&[vec![0, 1, 2]]);
        assert!(z.contains_set(f, &[0, 1, 2]));
        assert!(!z.contains_set(f, &[0, 1]));
        assert!(!z.contains_set(f, &[0, 1, 2, 3]));
    }

    #[test]
    fn export_import_round_trips_into_a_fresh_manager() {
        let mut z = Zdd::new(6);
        let a = z.family(&[vec![0, 2], vec![1], vec![3, 4, 5], vec![]]);
        let b = z.family(&[vec![1], vec![2, 5]]);
        let (table, roots) = z.export(&[a, b, ZDD_EMPTY, ZDD_UNIT]);
        assert_eq!(roots[2], 0, "empty terminal keeps index 0");
        assert_eq!(roots[3], 1, "unit terminal keeps index 1");

        let mut fresh = Zdd::new(6);
        let imported = fresh.import(&table, &roots).unwrap();
        assert_eq!(fresh.sets(imported[0]), z.sets(a));
        assert_eq!(fresh.sets(imported[1]), z.sets(b));
        assert_eq!(imported[2], ZDD_EMPTY);
        assert_eq!(imported[3], ZDD_UNIT);

        // importing into the exporting manager re-canonicalizes to the
        // exact same references
        let again = z.import(&table, &roots).unwrap();
        assert_eq!(again, vec![a, b, ZDD_EMPTY, ZDD_UNIT]);
    }

    #[test]
    fn export_shares_structure_between_roots() {
        let mut z = Zdd::new(8);
        let a = z.family(&[vec![0, 1], vec![2]]);
        let b = z.union(a, ZDD_UNIT); // shares every node of a
        let (table, _) = z.export(&[a, b]);
        let (solo, _) = z.export(&[a]);
        assert!(
            table.len() < 2 * solo.len(),
            "shared sub-diagram serialized once: {} vs {}",
            table.len(),
            solo.len()
        );
    }

    #[test]
    fn import_rejects_malformed_tables() {
        let mut z = Zdd::new(3);
        // variable outside the universe
        assert!(z
            .import(&[(7, 0, 1)], &[2])
            .unwrap_err()
            .contains("universe"));
        // forward / self reference
        assert!(z
            .import(&[(0, 2, 1)], &[2])
            .unwrap_err()
            .contains("forward"));
        // zero-suppression violation
        assert!(z
            .import(&[(0, 1, 0)], &[2])
            .unwrap_err()
            .contains("zero-suppression"));
        // child variable not below parent
        assert!(z
            .import(&[(1, 0, 1), (1, 0, 2)], &[3])
            .unwrap_err()
            .contains("below"));
        // root out of range
        assert!(z.import(&[(0, 0, 1)], &[9]).unwrap_err().contains("root"));
        // a valid table still imports after the failures above
        assert!(z.import(&[(0, 0, 1)], &[2]).is_ok());
    }
}
