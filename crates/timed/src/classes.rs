//! The Berthomieu–Diaz state-class graph of a Time Petri net.
//!
//! A *state class* is a marking plus a firing domain (a [`Dbm`]) over the
//! remaining delays of the enabled transitions. Firing `t` is possible
//! when the domain stays consistent under `θ_t ≤ θ_j` for every enabled
//! `j` (strong semantics: nothing may overshoot its latest firing time);
//! the successor domain shifts every *persistent* transition's delay by
//! `−θ_t` and gives newly enabled transitions their static interval.
//!
//! With every interval `[0, ∞)` the class graph coincides with the
//! classical reachability graph; tighter intervals prune interleavings and
//! whole branches — the timing analyses of the paper's §5 outlook.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use petri::{Marking, TransitionId};

use crate::dbm::Dbm;
use crate::error::TimedError;
use crate::net::TimedNet;

/// One state class: a marking and the firing domain of its enabled
/// transitions (variable `i + 1` of the DBM is `enabled[i]`, sorted by
/// transition id so equal classes are structurally equal).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateClass {
    marking: Marking,
    enabled: Vec<TransitionId>,
    domain: Dbm,
}

impl StateClass {
    /// The marking of this class.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The enabled transitions, sorted by id.
    pub fn enabled(&self) -> &[TransitionId] {
        &self.enabled
    }

    /// The firing domain.
    pub fn domain(&self) -> &Dbm {
        &self.domain
    }

    fn var_of(&self, t: TransitionId) -> Option<usize> {
        self.enabled.iter().position(|&u| u == t).map(|i| i + 1)
    }
}

/// Options for [`ClassGraph::explore_with`].
#[derive(Debug, Clone)]
pub struct ClassOptions {
    /// Abort with [`TimedError::ClassLimit`] once this many classes exist.
    pub max_classes: usize,
}

impl Default for ClassOptions {
    fn default() -> Self {
        ClassOptions {
            max_classes: 2_000_000,
        }
    }
}

/// The explored state-class graph.
///
/// # Examples
///
/// ```
/// use petri::NetBuilder;
/// use timed::{ClassGraph, Interval, TimedNet};
///
/// // two parallel actions; timing forces `fast` before `slow`
/// let mut b = NetBuilder::new("ordered");
/// let p = b.place_marked("p");
/// let q = b.place_marked("q");
/// let fast = b.transition("fast", [p], []);
/// let slow = b.transition("slow", [q], []);
/// let timed = TimedNet::new(b.build()?)
///     .with_interval(fast, Interval::new(0, 1))
///     .with_interval(slow, Interval::new(10, 20));
/// let graph = ClassGraph::explore(&timed)?;
/// assert_eq!(graph.class_count(), 3, "the slow-first interleaving is pruned");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClassGraph {
    classes: Vec<StateClass>,
    edges: Vec<(usize, TransitionId, usize)>,
    deadlocks: Vec<usize>,
}

impl ClassGraph {
    /// Explores the full state-class graph with default options.
    ///
    /// # Errors
    ///
    /// Returns [`TimedError`] variants for unsafe nets or exhausted
    /// budgets.
    pub fn explore(timed: &TimedNet) -> Result<Self, TimedError> {
        Self::explore_with(timed, &ClassOptions::default())
    }

    /// Explores the state-class graph with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`TimedError::NotSafe`] if a firing violates safeness or
    /// [`TimedError::ClassLimit`] when the class budget is exceeded.
    pub fn explore_with(timed: &TimedNet, opts: &ClassOptions) -> Result<Self, TimedError> {
        let net = timed.net();
        let initial = initial_class(timed);
        let mut classes = vec![initial.clone()];
        let mut index: HashMap<StateClass, usize> = HashMap::new();
        index.insert(initial, 0);
        let mut edges = Vec::new();
        let mut deadlocks = Vec::new();

        let mut frontier = 0;
        while frontier < classes.len() {
            let class = classes[frontier].clone();
            let mut any = false;
            for &t in class.enabled().iter() {
                let Some(next) = successor(timed, &class, t)? else {
                    continue;
                };
                any = true;
                let nid = match index.entry(next) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        classes.push(e.key().clone());
                        let id = classes.len() - 1;
                        e.insert(id);
                        if classes.len() > opts.max_classes {
                            return Err(TimedError::ClassLimit(opts.max_classes));
                        }
                        id
                    }
                };
                edges.push((frontier, t, nid));
            }
            if !any {
                deadlocks.push(frontier);
            }
            frontier += 1;
        }
        let _ = net;
        Ok(ClassGraph {
            classes,
            edges,
            deadlocks,
        })
    }

    /// Number of state classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of firing edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The classes themselves.
    pub fn classes(&self) -> &[StateClass] {
        &self.classes
    }

    /// The labelled edges `(from, transition, to)` by class index.
    pub fn edges(&self) -> &[(usize, TransitionId, usize)] {
        &self.edges
    }

    /// Classes from which nothing can fire.
    pub fn deadlocks(&self) -> &[usize] {
        &self.deadlocks
    }

    /// `true` if some reachable class is dead.
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }

    /// The distinct reachable markings (projecting domains away).
    pub fn reachable_markings(&self) -> Vec<Marking> {
        let mut out: Vec<Marking> = self.classes.iter().map(|c| c.marking.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

fn initial_class(timed: &TimedNet) -> StateClass {
    let net = timed.net();
    let m0 = net.initial_marking().clone();
    let mut enabled = net.enabled_transitions(&m0);
    enabled.sort();
    let bounds: Vec<(i64, i64)> = enabled
        .iter()
        .map(|&t| {
            let iv = timed.interval(t);
            (iv.eft, iv.lft)
        })
        .collect();
    let mut domain = Dbm::unconstrained(1).extend(&bounds);
    let consistent = domain.close();
    debug_assert!(consistent, "static intervals are non-empty");
    StateClass {
        marking: m0,
        enabled,
        domain,
    }
}

/// Computes the successor class of `class` by firing `t`, or `None` when
/// `t` cannot fire first in the domain.
fn successor(
    timed: &TimedNet,
    class: &StateClass,
    t: TransitionId,
) -> Result<Option<StateClass>, TimedError> {
    let net = timed.net();
    let f = class.var_of(t).expect("t is enabled in the class");

    // firability: t can be the first to fire
    let mut fire_dom = class.domain.clone();
    for (i, _) in class.enabled.iter().enumerate() {
        let v = i + 1;
        if v != f {
            fire_dom.constrain(f, v, 0); // θ_t − θ_j ≤ 0
        }
    }
    if !fire_dom.close() {
        return Ok(None);
    }

    // markings: intermediate (tokens of •t removed) and successor
    let mut intermediate = class.marking.clone();
    for &p in net.pre_places(t) {
        intermediate.remove_token(p);
    }
    let next_marking = net.fire(t, &class.marking).map_err(TimedError::from_net)?;

    // persistence (single-server): enabled before, through the token
    // removal, and after
    let mut persistent: Vec<TransitionId> = class
        .enabled
        .iter()
        .copied()
        .filter(|&j| j != t && net.enabled(j, &intermediate) && net.enabled(j, &next_marking))
        .collect();
    persistent.sort();
    let persistent_vars: Vec<usize> = persistent
        .iter()
        .map(|&j| class.var_of(j).expect("persistent was enabled"))
        .collect();

    let mut newly: Vec<TransitionId> = net
        .enabled_transitions(&next_marking)
        .into_iter()
        .filter(|j| !persistent.contains(j))
        .collect();
    newly.sort();

    // shifted domain over persistent, then fresh intervals for the new ones
    let shifted = fire_dom.after_firing(f, &persistent_vars);
    let bounds: Vec<(i64, i64)> = newly
        .iter()
        .map(|&j| {
            let iv = timed.interval(j);
            (iv.eft, iv.lft)
        })
        .collect();
    let mut domain = shifted.extend(&bounds);
    if !domain.close() {
        return Ok(None); // cannot happen with non-empty static intervals
    }

    // canonical variable order: enabled sorted by transition id
    let mut enabled: Vec<(TransitionId, usize)> = persistent
        .iter()
        .enumerate()
        .map(|(i, &j)| (j, i + 1))
        .chain(
            newly
                .iter()
                .enumerate()
                .map(|(i, &j)| (j, persistent.len() + i + 1)),
        )
        .collect();
    enabled.sort_by_key(|&(j, _)| j);
    let order: Vec<usize> = enabled.iter().map(|&(_, v)| v).collect();
    let domain = permute(&domain, &order);
    let enabled: Vec<TransitionId> = enabled.into_iter().map(|(j, _)| j).collect();

    Ok(Some(StateClass {
        marking: next_marking,
        enabled,
        domain,
    }))
}

/// Reorders DBM variables: `order[k]` is the old variable index that
/// becomes variable `k + 1`.
fn permute(d: &Dbm, order: &[usize]) -> Dbm {
    let mut out = Dbm::unconstrained(order.len() + 1);
    let old_of = |k: usize| if k == 0 { 0 } else { order[k - 1] };
    for i in 0..=order.len() {
        for j in 0..=order.len() {
            if i != j {
                out.constrain(i, j, d.diff_upper(old_of(i), old_of(j)));
            }
        }
    }
    let consistent = out.close();
    debug_assert!(consistent, "permutation preserves consistency");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Interval;
    use petri::{NetBuilder, ReachabilityGraph};

    #[test]
    fn untimed_intervals_reproduce_the_reachability_graph() {
        for net in [
            models::figures::fig2(3),
            models::nsdp(2),
            models::overtake(2),
        ] {
            let rg = ReachabilityGraph::explore(&net).unwrap();
            let timed = TimedNet::new(net);
            let graph = ClassGraph::explore(&timed).unwrap();
            assert_eq!(
                graph.class_count(),
                rg.state_count(),
                "{}",
                timed.net().name()
            );
            assert_eq!(graph.has_deadlock(), rg.has_deadlock());
        }
    }

    #[test]
    fn race_prunes_the_slow_branch() {
        let mut b = NetBuilder::new("race");
        let p = b.place_marked("p");
        let fast = b.transition("fast", [p], []);
        let slow = b.transition("slow", [p], []);
        let net = b.build().unwrap();
        // untimed: both branches
        assert_eq!(ReachabilityGraph::explore(&net).unwrap().state_count(), 2);
        let timed = TimedNet::new(net)
            .with_interval(fast, Interval::new(0, 1))
            .with_interval(slow, Interval::new(5, 9));
        let graph = ClassGraph::explore(&timed).unwrap();
        // `slow` can never fire first: only the fast branch remains
        assert_eq!(graph.class_count(), 2);
        assert_eq!(graph.edge_count(), 1);
        assert_eq!(graph.edges()[0].1, fast);
    }

    #[test]
    fn overlapping_race_keeps_both_branches() {
        let mut b = NetBuilder::new("race");
        let p = b.place_marked("p");
        let a = b.transition("a", [p], []);
        let c = b.transition("c", [p], []);
        let net = b.build().unwrap();
        let timed = TimedNet::new(net)
            .with_interval(a, Interval::new(0, 5))
            .with_interval(c, Interval::new(3, 9));
        let graph = ClassGraph::explore(&timed).unwrap();
        assert_eq!(graph.edge_count(), 2, "intervals overlap: both can win");
    }

    #[test]
    fn timing_orders_parallel_actions() {
        let mut b = NetBuilder::new("ordered");
        let p = b.place_marked("p");
        let q = b.place_marked("q");
        let pa = b.place("pa");
        let qa = b.place("qa");
        let fast = b.transition("fast", [p], [pa]);
        let slow = b.transition("slow", [q], [qa]);
        let net = b.build().unwrap();
        // untimed: 4 interleaved states
        assert_eq!(ReachabilityGraph::explore(&net).unwrap().state_count(), 4);
        let timed = TimedNet::new(net)
            .with_interval(fast, Interval::new(0, 1))
            .with_interval(slow, Interval::new(10, 20));
        let graph = ClassGraph::explore(&timed).unwrap();
        // fast must fire first: m0 -> fast -> slow, 3 classes
        assert_eq!(graph.class_count(), 3);
        assert!(graph.has_deadlock(), "both done: terminal class");
    }

    #[test]
    fn persistent_clock_keeps_elapsed_time() {
        // slow [4,4] survives the firing of fast [1,1]: after fast, slow's
        // remaining delay is [3,3]
        let mut b = NetBuilder::new("clocks");
        let p = b.place_marked("p");
        let q = b.place_marked("q");
        let fast = b.transition("fast", [p], []);
        let slow = b.transition("slow", [q], []);
        let net = b.build().unwrap();
        let timed = TimedNet::new(net)
            .with_interval(fast, Interval::new(1, 1))
            .with_interval(slow, Interval::new(4, 4));
        let graph = ClassGraph::explore(&timed).unwrap();
        let after_fast = graph
            .edges()
            .iter()
            .find(|&&(from, t, _)| from == 0 && t == fast)
            .map(|&(_, _, to)| to)
            .expect("fast fires first");
        let class = &graph.classes()[after_fast];
        assert_eq!(class.enabled(), &[slow]);
        assert_eq!(class.domain().lower(1), 3);
        assert_eq!(class.domain().upper(1), 3);
    }

    #[test]
    fn urgent_transition_blocks_later_ones() {
        // watchdog [0,2] must fire before lazy [5,9] ever can
        let mut b = NetBuilder::new("watchdog");
        let p = b.place_marked("p");
        let q = b.place_marked("q");
        let dog = b.transition("dog", [p], [p]); // self-loop: fires forever
        let lazy = b.transition("lazy", [q], []);
        let net = b.build().unwrap();
        let timed = TimedNet::new(net)
            .with_interval(dog, Interval::new(0, 2))
            .with_interval(lazy, Interval::new(5, 9));
        let graph = ClassGraph::explore(&timed).unwrap();
        // lazy eventually fires: the dog resets to [0,2] on every loop, so
        // time can pass 2 units per firing — lazy's window is reachable
        assert!(
            graph.edges().iter().any(|&(_, t, _)| t == lazy),
            "lazy fires after enough dog loops"
        );
    }

    #[test]
    fn class_limit_enforced() {
        let timed = TimedNet::new(models::nsdp(2));
        let err = ClassGraph::explore_with(&timed, &ClassOptions { max_classes: 2 }).unwrap_err();
        assert_eq!(err, TimedError::ClassLimit(2));
    }

    #[test]
    fn timed_markings_are_a_subset_of_untimed() {
        let net = models::figures::fig2(3);
        let rg = ReachabilityGraph::explore(&net).unwrap();
        let timed = TimedNet::new(net).with_uniform_interval(Interval::new(1, 2));
        let graph = ClassGraph::explore(&timed).unwrap();
        for m in graph.reachable_markings() {
            assert!(rg.contains(&m));
        }
    }
}
