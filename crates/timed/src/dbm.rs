//! Difference bound matrices (DBMs) for firing domains.
//!
//! A firing domain constrains the remaining delays `θᵢ` of the enabled
//! transitions of a state class: `aᵢ ≤ θᵢ ≤ bᵢ` together with relational
//! bounds `θᵢ − θⱼ ≤ cᵢⱼ`. The DBM stores, for variables `x₀ = 0` (the
//! reference) and `x₁..xₙ = θ₁..θₙ`, the tightest upper bounds
//! `d[i][j] ≥ xᵢ − xⱼ`, canonicalized by all-pairs shortest paths — which
//! makes equality of domains a plain matrix comparison.

use std::fmt;

/// The "no bound" sentinel (∞). Large enough to never overflow when two
/// bounds are added.
pub const INF: i64 = i64::MAX / 4;

/// A canonical difference bound matrix over `dim` variables
/// (variable 0 is the constant reference).
///
/// # Examples
///
/// ```
/// use timed::Dbm;
///
/// // one clock constrained to [2, 5]
/// let mut d = Dbm::unconstrained(2);
/// d.bound_above(1, 5); // θ₁ ≤ 5
/// d.bound_below(1, 2); // θ₁ ≥ 2
/// assert!(d.close());
/// assert_eq!(d.upper(1), 5);
/// assert_eq!(d.lower(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dbm {
    dim: usize,
    /// row-major `dim × dim`; `d[i*dim + j]` bounds `xᵢ − xⱼ`.
    d: Vec<i64>,
}

impl Dbm {
    /// A domain with no constraints except `xᵢ − xᵢ ≤ 0` and `θᵢ ≥ 0`.
    pub fn unconstrained(dim: usize) -> Self {
        assert!(dim >= 1, "the reference variable is always present");
        let mut d = vec![INF; dim * dim];
        for i in 0..dim {
            d[i * dim + i] = 0;
        }
        // θᵢ ≥ 0 ⟺ x₀ − xᵢ ≤ 0 (row 0, columns 1..dim)
        for cell in d.iter_mut().take(dim).skip(1) {
            *cell = 0;
        }
        Dbm { dim, d }
    }

    /// Number of variables including the reference.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn at(&self, i: usize, j: usize) -> i64 {
        self.d[i * self.dim + j]
    }

    fn set(&mut self, i: usize, j: usize, v: i64) {
        let cur = &mut self.d[i * self.dim + j];
        if v < *cur {
            *cur = v;
        }
    }

    /// Adds `θᵢ ≤ b` (i.e. `xᵢ − x₀ ≤ b`).
    pub fn bound_above(&mut self, i: usize, b: i64) {
        self.set(i, 0, b);
    }

    /// Adds `θᵢ ≥ b` (i.e. `x₀ − xᵢ ≤ −b`).
    pub fn bound_below(&mut self, i: usize, b: i64) {
        self.set(0, i, -b);
    }

    /// Adds `xᵢ − xⱼ ≤ c`.
    pub fn constrain(&mut self, i: usize, j: usize, c: i64) {
        self.set(i, j, c);
    }

    /// The tightest upper bound on `θᵢ` (or [`INF`]).
    pub fn upper(&self, i: usize) -> i64 {
        self.at(i, 0)
    }

    /// The tightest lower bound on `θᵢ`.
    pub fn lower(&self, i: usize) -> i64 {
        -self.at(0, i)
    }

    /// The tightest upper bound on `xᵢ − xⱼ`.
    pub fn diff_upper(&self, i: usize, j: usize) -> i64 {
        self.at(i, j)
    }

    /// Canonicalizes by Floyd–Warshall closure. Returns `false` when the
    /// constraint system is inconsistent (empty domain).
    #[must_use]
    pub fn close(&mut self) -> bool {
        let n = self.dim;
        for k in 0..n {
            for i in 0..n {
                let dik = self.at(i, k);
                if dik >= INF {
                    continue;
                }
                for j in 0..n {
                    let dkj = self.at(k, j);
                    if dkj >= INF {
                        continue;
                    }
                    let via = dik + dkj;
                    if via < self.at(i, j) {
                        self.d[i * n + j] = via;
                    }
                }
            }
        }
        (0..n).all(|i| self.at(i, i) >= 0)
    }

    /// Builds the successor domain after firing variable `f`: persistent
    /// variables (listed by their old indices, in the order they will take
    /// in the new domain) are shifted by `−θ_f`; the result must be closed
    /// and extended with the newly enabled variables by the caller.
    ///
    /// Requires `self` to be closed and already constrained by
    /// `θ_f ≤ θ_j` for every enabled `j`.
    pub fn after_firing(&self, f: usize, persistent: &[usize]) -> Dbm {
        let n = persistent.len() + 1;
        let mut out = Dbm::unconstrained(n);
        for (a, &i) in persistent.iter().enumerate() {
            let ai = a + 1;
            // θ'ᵢ ≤ max(θᵢ − θ_f) = d[i][f]
            out.set(ai, 0, self.at(i, f));
            // θ'ᵢ ≥ −d[f][i], but never below 0 (already seeded)
            out.set(0, ai, self.at(f, i));
            for (b, &j) in persistent.iter().enumerate() {
                if i != j {
                    out.set(ai, b + 1, self.at(i, j));
                }
            }
        }
        out
    }

    /// Grows the domain with `extra` fresh variables, each constrained to
    /// `[eft, lft]` (pass [`INF`] for an unbounded latest firing time).
    pub fn extend(&self, bounds: &[(i64, i64)]) -> Dbm {
        let n = self.dim + bounds.len();
        let mut out = Dbm::unconstrained(n);
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i != j {
                    out.set(i, j, self.at(i, j));
                }
            }
        }
        for (k, &(eft, lft)) in bounds.iter().enumerate() {
            let v = self.dim + k;
            out.bound_above(v, lft);
            out.bound_below(v, eft);
        }
        out
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 1..self.dim {
            if i > 1 {
                write!(f, ", ")?;
            }
            let up = self.upper(i);
            if up >= INF {
                write!(f, "{} <= t{i}", self.lower(i))?;
            } else {
                write!(f, "{} <= t{i} <= {}", self.lower(i), up)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_consistent() {
        let mut d = Dbm::unconstrained(3);
        assert!(d.close());
        assert_eq!(d.lower(1), 0);
        assert_eq!(d.upper(1), INF);
    }

    #[test]
    fn interval_bounds_round_trip() {
        let mut d = Dbm::unconstrained(2);
        d.bound_above(1, 7);
        d.bound_below(1, 3);
        assert!(d.close());
        assert_eq!(d.lower(1), 3);
        assert_eq!(d.upper(1), 7);
    }

    #[test]
    fn inconsistency_detected() {
        let mut d = Dbm::unconstrained(2);
        d.bound_above(1, 2);
        d.bound_below(1, 5);
        assert!(!d.close(), "5 <= θ <= 2 is empty");
    }

    #[test]
    fn closure_tightens_through_differences() {
        // θ1 ≤ 4, θ2 − θ1 ≤ 1 ⟹ θ2 ≤ 5
        let mut d = Dbm::unconstrained(3);
        d.bound_above(1, 4);
        d.constrain(2, 1, 1);
        assert!(d.close());
        assert_eq!(d.upper(2), 5);
    }

    #[test]
    fn firing_shift_is_relative() {
        // θ1 ∈ [1,3], θ2 ∈ [2,5]; fire 1 (θ1 ≤ θ2): θ'2 = θ2 − θ1
        let mut d = Dbm::unconstrained(3);
        d.bound_below(1, 1);
        d.bound_above(1, 3);
        d.bound_below(2, 2);
        d.bound_above(2, 5);
        d.constrain(1, 2, 0); // θ1 ≤ θ2
        assert!(d.close());
        let mut after = d.after_firing(1, &[2]);
        assert!(after.close());
        // θ'2 ∈ [max(0, 2-3), 5-1] = [0, 4]
        assert_eq!(after.lower(1), 0);
        assert_eq!(after.upper(1), 4);
    }

    #[test]
    fn extend_adds_fresh_intervals() {
        let mut d = Dbm::unconstrained(1);
        assert!(d.close());
        let mut e = d.extend(&[(2, 6), (0, INF)]);
        assert!(e.close());
        assert_eq!(e.lower(1), 2);
        assert_eq!(e.upper(1), 6);
        assert_eq!(e.lower(2), 0);
        assert_eq!(e.upper(2), INF);
    }

    #[test]
    fn canonical_form_makes_equality_semantic() {
        let mut a = Dbm::unconstrained(2);
        a.bound_above(1, 5);
        a.bound_above(1, 9); // redundant
        assert!(a.close());
        let mut b = Dbm::unconstrained(2);
        b.bound_above(1, 5);
        assert!(b.close());
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_intervals() {
        let mut d = Dbm::unconstrained(2);
        d.bound_below(1, 1);
        d.bound_above(1, 4);
        assert!(d.close());
        assert_eq!(d.to_string(), "1 <= t1 <= 4");
    }
}
