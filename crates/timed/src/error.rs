//! Error type of the timed analysis.

use std::error::Error;
use std::fmt;

/// Errors produced while exploring a state-class graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimedError {
    /// The underlying net is not safe.
    NotSafe(String),
    /// Exploration exceeded the configured class budget.
    ClassLimit(usize),
}

impl TimedError {
    pub(crate) fn from_net(err: petri::NetError) -> Self {
        TimedError::NotSafe(err.to_string())
    }
}

impl fmt::Display for TimedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimedError::NotSafe(msg) => write!(f, "{msg}"),
            TimedError::ClassLimit(n) => {
                write!(f, "state-class limit of {n} exceeded during exploration")
            }
        }
    }
}

impl Error for TimedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert_eq!(
            TimedError::ClassLimit(3).to_string(),
            "state-class limit of 3 exceeded during exploration"
        );
        assert!(TimedError::NotSafe("boom".into())
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TimedError>();
    }
}
