//! # timed — Time Petri nets and state-class graphs
//!
//! The paper closes (§5) by pointing at *"efficient timing verification of
//! concurrent systems, modeled as Timed Petri nets"* ([7], [13]) as the
//! direction the generalized analysis should be leveraged toward. This
//! crate implements that substrate: Merlin's Time Petri nets (a safe net
//! plus a static firing interval per transition) and the classical
//! Berthomieu–Diaz **state-class graph** construction over difference
//! bound matrices.
//!
//! * [`Interval`] / [`TimedNet`] — the model;
//! * [`Dbm`] — canonical difference bound matrices (firing domains);
//! * [`ClassGraph`] — exploration, timed deadlock detection, and the
//!   projection back to reachable markings.
//!
//! With every interval left at `[0, ∞)` the class graph coincides with
//! the untimed reachability graph (tested, also property-tested on random
//! nets); tightening intervals prunes interleavings and whole branches.
//!
//! # Example
//!
//! ```
//! use petri::NetBuilder;
//! use timed::{ClassGraph, Interval, TimedNet};
//!
//! // a watchdog that always beats the timeout
//! let mut b = NetBuilder::new("watchdog");
//! let p = b.place_marked("p");
//! let ok = b.transition("kick", [p], []);
//! let boom = b.transition("timeout", [p], []);
//! let timed = TimedNet::new(b.build()?)
//!     .with_interval(ok, Interval::new(0, 3))
//!     .with_interval(boom, Interval::new(10, 10));
//! let graph = ClassGraph::explore(&timed)?;
//! // the timeout branch is unreachable in time
//! assert!(graph.edges().iter().all(|&(_, t, _)| t == ok));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classes;
mod dbm;
mod error;
mod net;

pub use classes::{ClassGraph, ClassOptions, StateClass};
pub use dbm::{Dbm, INF};
pub use error::TimedError;
pub use net::{Interval, TimedNet};
