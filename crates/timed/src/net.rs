//! Time Petri nets: a safe net whose transitions carry static firing
//! intervals (Merlin's model).

use petri::{PetriNet, TransitionId};

use crate::dbm::INF;

/// A static firing interval `[eft, lft]`: a transition must be enabled for
/// at least `eft` time units before it may fire, and cannot stay enabled
/// beyond `lft` without firing (strong semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Earliest firing time.
    pub eft: i64,
    /// Latest firing time; [`unbounded`](Interval::unbounded) for ∞.
    pub lft: i64,
}

impl Interval {
    /// The interval `[eft, lft]`.
    ///
    /// # Panics
    ///
    /// Panics if `eft < 0` or `lft < eft`.
    pub fn new(eft: i64, lft: i64) -> Self {
        assert!(eft >= 0, "earliest firing time must be non-negative");
        assert!(lft >= eft, "interval is empty: [{eft}, {lft}]");
        Interval { eft, lft }
    }

    /// The interval `[eft, ∞)`.
    pub fn at_least(eft: i64) -> Self {
        assert!(eft >= 0, "earliest firing time must be non-negative");
        Interval { eft, lft: INF }
    }

    /// The untimed interval `[0, ∞)` — a transition with no timing
    /// constraint at all.
    pub fn any() -> Self {
        Interval { eft: 0, lft: INF }
    }

    /// `true` if the latest firing time is unbounded.
    pub fn unbounded(&self) -> bool {
        self.lft >= INF
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::any()
    }
}

/// A Time Petri net: a safe [`PetriNet`] plus one [`Interval`] per
/// transition.
///
/// # Examples
///
/// ```
/// use petri::NetBuilder;
/// use timed::{Interval, TimedNet};
///
/// let mut b = NetBuilder::new("race");
/// let p = b.place_marked("p");
/// let fast = b.transition("fast", [p], []);
/// let slow = b.transition("slow", [p], []);
/// let net = b.build()?;
/// let timed = TimedNet::new(net)
///     .with_interval(fast, Interval::new(0, 1))
///     .with_interval(slow, Interval::new(5, 9));
/// assert_eq!(timed.interval(slow).eft, 5);
/// # Ok::<(), petri::NetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimedNet {
    net: PetriNet,
    intervals: Vec<Interval>,
}

impl TimedNet {
    /// Wraps a net with every transition unconstrained (`[0, ∞)`).
    pub fn new(net: PetriNet) -> Self {
        let intervals = vec![Interval::any(); net.transition_count()];
        TimedNet { net, intervals }
    }

    /// Sets the interval of one transition (builder style).
    #[must_use]
    pub fn with_interval(mut self, t: TransitionId, interval: Interval) -> Self {
        self.intervals[t.index()] = interval;
        self
    }

    /// Sets the same interval on every transition.
    #[must_use]
    pub fn with_uniform_interval(mut self, interval: Interval) -> Self {
        self.intervals.fill(interval);
        self
    }

    /// The underlying untimed net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The firing interval of `t`.
    pub fn interval(&self, t: TransitionId) -> Interval {
        self.intervals[t.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petri::NetBuilder;

    fn simple() -> PetriNet {
        let mut b = NetBuilder::new("n");
        let p = b.place_marked("p");
        b.transition("t", [p], []);
        b.build().unwrap()
    }

    #[test]
    fn default_intervals_are_untimed() {
        let timed = TimedNet::new(simple());
        let t = TransitionId::new(0);
        assert_eq!(timed.interval(t), Interval::any());
        assert!(timed.interval(t).unbounded());
    }

    #[test]
    fn with_interval_overrides() {
        let t = TransitionId::new(0);
        let timed = TimedNet::new(simple()).with_interval(t, Interval::new(2, 4));
        assert_eq!(timed.interval(t).eft, 2);
        assert_eq!(timed.interval(t).lft, 4);
        assert!(!timed.interval(t).unbounded());
    }

    #[test]
    fn uniform_interval_applies_everywhere() {
        let mut b = NetBuilder::new("n");
        let p = b.place_marked("p");
        let q = b.place_marked("q");
        b.transition("a", [p], []);
        b.transition("b", [q], []);
        let timed = TimedNet::new(b.build().unwrap()).with_uniform_interval(Interval::new(1, 1));
        for t in timed.net().transitions() {
            assert_eq!(timed.interval(t), Interval::new(1, 1));
        }
    }

    #[test]
    #[should_panic(expected = "interval is empty")]
    fn empty_interval_rejected() {
        Interval::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_eft_rejected() {
        Interval::at_least(-1);
    }
}
