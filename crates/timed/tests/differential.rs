//! Differential property tests of the state-class construction:
//! with untimed intervals the class graph must match exhaustive
//! exploration exactly; with arbitrary intervals it must stay a sound
//! restriction of the untimed behaviour.

use models::random::{random_safe_net, RandomNetConfig};
use petri::ReachabilityGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use timed::{ClassGraph, Interval, TimedNet, INF};

fn cfg() -> RandomNetConfig {
    RandomNetConfig {
        components: 2,
        places_per_component: 3,
        resources: 1,
        resource_use_prob: 0.4,
        choice_prob: 0.5,
        max_states: 1_500,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The untimed-equivalence theorem: every interval `[0, ∞)` makes the
    /// state-class graph isomorphic to the reachability graph.
    #[test]
    fn untimed_class_graph_equals_reachability_graph(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        let graph = ClassGraph::explore(&TimedNet::new(net)).expect("within budget");
        prop_assert_eq!(graph.class_count(), rg.state_count());
        prop_assert_eq!(graph.edge_count(), rg.edge_count());
        prop_assert_eq!(graph.has_deadlock(), rg.has_deadlock());
    }

    /// Random timing restricts behaviour: every timed-reachable marking is
    /// untimed-reachable, and every timed firing edge exists untimed.
    #[test]
    fn timing_only_restricts(seed in 0u64..100_000, iv_seed in 0u64..1_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        let mut rng = StdRng::seed_from_u64(iv_seed);
        let mut timed = TimedNet::new(net);
        let transitions: Vec<_> = timed.net().transitions().collect();
        for t in transitions {
            let eft = rng.gen_range(0..4i64);
            let lft = if rng.gen_bool(0.3) { INF } else { eft + rng.gen_range(0..4i64) };
            timed = timed.with_interval(t, Interval { eft, lft });
        }
        let graph = ClassGraph::explore(&timed).expect("within budget");
        for m in graph.reachable_markings() {
            prop_assert!(
                rg.contains(&m),
                "timed analysis invented a marking\n{}",
                petri::to_text(timed.net())
            );
        }
        // a marking-dead class is dead untimed as well; a *time* deadlock
        // cannot occur under strong semantics with non-empty intervals
        for &d in graph.deadlocks() {
            prop_assert!(timed.net().is_dead(graph.classes()[d].marking()));
        }
    }

    /// Domains are internally consistent: lower bounds never exceed upper
    /// bounds for any enabled transition of any class.
    #[test]
    fn firing_domains_are_consistent(seed in 0u64..50_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let mut timed = TimedNet::new(net);
        let transitions: Vec<_> = timed.net().transitions().collect();
        for (i, t) in transitions.into_iter().enumerate() {
            timed = timed.with_interval(t, Interval::new(i as i64 % 3, i as i64 % 3 + 2));
        }
        let graph = ClassGraph::explore(&timed).expect("within budget");
        for class in graph.classes() {
            for i in 1..=class.enabled().len() {
                prop_assert!(class.domain().lower(i) <= class.domain().upper(i));
                prop_assert!(class.domain().lower(i) >= 0);
            }
        }
    }
}
