//! Branching processes: the conditions and events of an unfolding.
//!
//! A *branching process* of a safe net is an acyclic occurrence net whose
//! **conditions** are instances of places and whose **events** are
//! instances of transitions; conflicts are never resolved (both branches
//! of a choice coexist, in *conflict*), and concurrency is explicit
//! (conditions that can coexist in a reachable cut are *concurrent*).

use petri::{BitSet, Marking, PetriNet, PlaceId, TransitionId};

/// Identifier of a condition (place instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConditionId(pub(crate) u32);

/// Identifier of an event (transition instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u32);

impl ConditionId {
    /// The raw index of this condition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EventId {
    /// The raw index of this event.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Condition {
    pub place: PlaceId,
    /// Event that produced this condition; `None` for initial conditions.
    pub producer: Option<EventId>,
    /// Events consuming this condition (grows as the prefix grows).
    pub consumers: Vec<EventId>,
}

#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub transition: TransitionId,
    pub preset: Vec<ConditionId>,
    pub postset: Vec<ConditionId>,
    /// The local configuration `[e]` as an event bit set (includes `e`).
    pub local_config: BitSet,
    /// `|[e]|` — the McMillan adequate order key.
    pub depth: usize,
    /// Marking reached by the local configuration, `Mark([e])`.
    pub mark: Marking,
    /// `true` if the event was declared a cut-off (not extended beyond).
    pub cutoff: bool,
}

/// Read-only view of a built branching process / finite prefix.
///
/// Construct one with [`Unfolding::build`](crate::Unfolding::build).
#[derive(Debug, Clone)]
pub struct Prefix {
    pub(crate) conditions: Vec<Condition>,
    pub(crate) events: Vec<Event>,
    pub(crate) initial_cut: Vec<ConditionId>,
}

impl Prefix {
    /// Number of conditions (place instances), initial cut included.
    pub fn condition_count(&self) -> usize {
        self.conditions.len()
    }

    /// Number of events (transition instances).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of cut-off events.
    pub fn cutoff_count(&self) -> usize {
        self.events.iter().filter(|e| e.cutoff).count()
    }

    /// The place a condition instantiates.
    pub fn place_of(&self, b: ConditionId) -> PlaceId {
        self.conditions[b.index()].place
    }

    /// The transition an event instantiates.
    pub fn transition_of(&self, e: EventId) -> TransitionId {
        self.events[e.index()].transition
    }

    /// `true` if event `e` was declared a cut-off.
    pub fn is_cutoff(&self, e: EventId) -> bool {
        self.events[e.index()].cutoff
    }

    /// The marking reached by the local configuration `[e]`.
    pub fn mark_of(&self, e: EventId) -> &Marking {
        &self.events[e.index()].mark
    }

    /// `|[e]|` — the size of the local configuration.
    pub fn depth_of(&self, e: EventId) -> usize {
        self.events[e.index()].depth
    }

    /// Iterates over all event ids.
    pub fn events(&self) -> impl ExactSizeIterator<Item = EventId> + '_ {
        (0..self.events.len()).map(|i| EventId(i as u32))
    }

    /// Iterates over all condition ids.
    pub fn conditions(&self) -> impl ExactSizeIterator<Item = ConditionId> + '_ {
        (0..self.conditions.len()).map(|i| ConditionId(i as u32))
    }

    /// The conditions of the initial cut (instances of initially marked
    /// places).
    pub fn initial_cut(&self) -> &[ConditionId] {
        &self.initial_cut
    }

    /// The marking corresponding to a *cut* given as the conditions left
    /// after running a configuration.
    pub(crate) fn marking_of_cut(&self, cut: &[ConditionId], net: &PetriNet) -> Marking {
        Marking::from_places(net.place_count(), cut.iter().map(|&b| self.place_of(b)))
    }

    /// Renders the prefix as a Graphviz digraph (conditions as circles,
    /// events as boxes, cut-offs dashed).
    pub fn to_dot(&self, net: &PetriNet) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph prefix {\n  rankdir=TB;\n");
        for b in self.conditions() {
            let _ = writeln!(
                out,
                "  c{} [shape=circle, label=\"{}\"];",
                b.index(),
                net.place_name(self.place_of(b))
            );
        }
        for e in self.events() {
            let style = if self.is_cutoff(e) {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  e{} [shape=box, label=\"{}\"{}];",
                e.index(),
                net.transition_name(self.transition_of(e)),
                style
            );
        }
        for e in self.events() {
            for &b in &self.events[e.index()].preset {
                let _ = writeln!(out, "  c{} -> e{};", b.index(), e.index());
            }
            for &b in &self.events[e.index()].postset {
                let _ = writeln!(out, "  e{} -> c{};", e.index(), b.index());
            }
        }
        out.push_str("}\n");
        out
    }
}
