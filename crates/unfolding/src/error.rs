//! Error type of the prefix construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building a finite prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnfoldError {
    /// The prefix exceeded the configured event budget.
    EventLimit(usize),
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::EventLimit(n) => {
                write!(f, "prefix exceeded the budget of {n} events")
            }
        }
    }
}

impl Error for UnfoldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_informative() {
        assert_eq!(
            UnfoldError::EventLimit(7).to_string(),
            "prefix exceeded the budget of 7 events"
        );
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<UnfoldError>();
    }
}
