//! # unfolding — McMillan finite complete prefixes for safe Petri nets
//!
//! The *other* classical answer to state explosion, included in this
//! reproduction as a comparator and extension: where the generalized
//! partial-order analysis of `gpo-core` merges conflicting branches into
//! one colored state, an **unfolding** lays all branches out side by side
//! in an acyclic occurrence net, and concurrency costs nothing because
//! independent events simply do not interleave. The paper's related-work
//! section points at unfolding-based verification (Semenov–Yakovlev [13],
//! after McMillan); this crate implements the McMillan construction:
//!
//! * [`Prefix`] — conditions (place instances) and events (transition
//!   instances) of a branching process, with DOT export;
//! * [`Unfolding::build`] — possible-extension search in adequate order
//!   (`|[e]|`) with cut-off events, yielding a *marking-complete* finite
//!   prefix;
//! * [`Unfolding::reachable_markings`] / [`has_deadlock`](Unfolding::has_deadlock)
//!   — the correctness bridge back to classical semantics.
//!
//! # Example: concurrency is free
//!
//! ```
//! use unfolding::Unfolding;
//! use petri::ReachabilityGraph;
//!
//! let net = models::figures::fig1(); // 3 concurrent transitions
//! let unf = Unfolding::build(&net)?;
//! let rg = ReachabilityGraph::explore(&net)?;
//! assert_eq!(unf.prefix().event_count(), 3); // prefix: one event each
//! assert_eq!(rg.state_count(), 8);           // graph: 2^3 interleaved states
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branching;
mod error;
mod unfold;

pub use branching::{ConditionId, EventId, Prefix};
pub use error::UnfoldError;
pub use unfold::{UnfoldOptions, Unfolding};
