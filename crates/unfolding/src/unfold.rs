//! Construction of McMillan-style finite complete prefixes.
//!
//! Events are added in order of increasing local-configuration size (the
//! McMillan adequate order); an event `e` is a **cut-off** when some
//! earlier event — or the empty configuration — already reaches the same
//! marking with a strictly smaller local configuration. The resulting
//! prefix is *marking-complete*: every reachable marking of the net is the
//! marking of some configuration of the prefix.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::time::Instant;

use petri::{BitSet, Budget, CoverageStats, Marking, Outcome, PetriNet, TransitionId};

use crate::branching::{Condition, ConditionId, Event, EventId, Prefix};
use crate::error::UnfoldError;

/// Options for [`Unfolding::build_with`].
#[derive(Debug, Clone)]
pub struct UnfoldOptions {
    /// Abort with [`UnfoldError::EventLimit`] once this many events exist.
    pub max_events: usize,
}

impl Default for UnfoldOptions {
    fn default() -> Self {
        UnfoldOptions {
            max_events: 1_000_000,
        }
    }
}

/// Approximate bookkeeping bytes per prefix condition (record plus its
/// share of the by-place and consumer vectors).
const CONDITION_BYTES: usize = 48;
/// Approximate fixed bytes per event beyond its marking, local
/// configuration and pre/postset entries.
const EVENT_BYTES: usize = 96;

/// A built finite complete prefix together with its net.
///
/// # Examples
///
/// ```
/// use unfolding::Unfolding;
///
/// // three concurrent transitions: the prefix has 3 events where the
/// // reachability graph needs 2^3 = 8 states
/// let net = models::figures::fig1();
/// let unf = Unfolding::build(&net)?;
/// assert_eq!(unf.prefix().event_count(), 3);
/// assert_eq!(unf.prefix().cutoff_count(), 0);
/// # Ok::<(), unfolding::UnfoldError>(())
/// ```
#[derive(Debug)]
pub struct Unfolding {
    prefix: Prefix,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    /// `|[e]|` if this event is added — the priority key.
    depth: usize,
    transition: TransitionId,
    /// Sorted preset conditions.
    preset: Vec<ConditionId>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.depth, self.transition, &self.preset).cmp(&(
            other.depth,
            other.transition,
            &other.preset,
        ))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Builder<'n> {
    net: &'n PetriNet,
    conditions: Vec<Condition>,
    events: Vec<Event>,
    initial_cut: Vec<ConditionId>,
    /// conditions grouped by the place they instantiate
    by_place: Vec<Vec<ConditionId>>,
    queue: BinaryHeap<Reverse<Candidate>>,
    seen: HashSet<(TransitionId, Vec<ConditionId>)>,
    /// minimal local-configuration size seen per marking
    marks: HashMap<Marking, usize>,
}

impl<'n> Builder<'n> {
    fn new(net: &'n PetriNet) -> Self {
        let mut b = Builder {
            net,
            conditions: Vec::new(),
            events: Vec::new(),
            initial_cut: Vec::new(),
            by_place: vec![Vec::new(); net.place_count()],
            queue: BinaryHeap::new(),
            seen: HashSet::new(),
            marks: HashMap::new(),
        };
        for p in net.places() {
            if net.initial_marking().is_marked(p) {
                let id = b.add_condition(p, None);
                b.initial_cut.push(id);
            }
        }
        b.marks.insert(net.initial_marking().clone(), 0);
        let initial: Vec<ConditionId> = b.initial_cut.clone();
        for &c in &initial {
            b.enqueue_extensions_with(c);
        }
        b
    }

    fn add_condition(&mut self, place: petri::PlaceId, producer: Option<EventId>) -> ConditionId {
        let id = ConditionId(self.conditions.len() as u32);
        self.conditions.push(Condition {
            place,
            producer,
            consumers: Vec::new(),
        });
        self.by_place[place.index()].push(id);
        id
    }

    fn history_union(&self, conditions: &[ConditionId]) -> BitSet {
        let mut acc: Option<BitSet> = None;
        for &b in conditions {
            if let Some(e) = self.conditions[b.index()].producer {
                let h = &self.events[e.index()].local_config;
                acc = Some(match acc {
                    None => h.clone(),
                    Some(mut a) => {
                        if a.capacity() < h.capacity() {
                            let mut bigger = h.clone();
                            bigger.union_with(&Self::pad(&a, h.capacity()));
                            bigger
                        } else {
                            a.union_with(&Self::pad(h, a.capacity()));
                            a
                        }
                    }
                });
            }
        }
        acc.unwrap_or_else(|| BitSet::new(0))
    }

    /// Grows a bit set to a larger universe (event sets only ever grow).
    fn pad(s: &BitSet, capacity: usize) -> BitSet {
        if s.capacity() == capacity {
            return s.clone();
        }
        BitSet::from_iter_with_capacity(capacity, s.iter())
    }

    /// `true` if the union of the histories of `conditions` is a
    /// configuration (conflict-free) and no member is consumed inside
    /// another member's history — i.e. the conditions form a co-set.
    fn is_co_set(&self, conditions: &[ConditionId]) -> bool {
        let union = self.history_union(conditions);
        // conflict-freeness: no two events of the union share a precondition
        let members: Vec<usize> = union.iter().collect();
        for (i, &e) in members.iter().enumerate() {
            for &f in &members[i + 1..] {
                if self.direct_conflict(EventId(e as u32), EventId(f as u32)) {
                    return false;
                }
            }
        }
        // no condition consumed by an event of the union
        for &b in conditions {
            for &consumer in &self.conditions[b.index()].consumers {
                if union.contains(consumer.index()) {
                    return false;
                }
            }
        }
        true
    }

    fn direct_conflict(&self, e: EventId, f: EventId) -> bool {
        let pe = &self.events[e.index()].preset;
        let pf = &self.events[f.index()].preset;
        pe.iter().any(|b| pf.contains(b))
    }

    /// Enqueues every possible extension whose preset includes `b`.
    fn enqueue_extensions_with(&mut self, b: ConditionId) {
        let place = self.conditions[b.index()].place;
        for &t in self.net.post_transitions(place) {
            let pre = self.net.pre_places(t);
            // choose one condition per preset place, `b` fixed for `place`
            let mut slots: Vec<Vec<ConditionId>> = Vec::with_capacity(pre.len());
            for &p in pre {
                if p == place {
                    slots.push(vec![b]);
                } else {
                    slots.push(self.by_place[p.index()].clone());
                }
            }
            self.combine(t, &slots, &mut Vec::new(), 0);
        }
    }

    fn combine(
        &mut self,
        t: TransitionId,
        slots: &[Vec<ConditionId>],
        chosen: &mut Vec<ConditionId>,
        i: usize,
    ) {
        if i == slots.len() {
            let mut preset = chosen.clone();
            preset.sort();
            preset.dedup();
            if preset.len() != chosen.len() {
                return; // the same condition cannot fill two preset slots
            }
            if self.seen.contains(&(t, preset.clone())) {
                return;
            }
            if !self.is_co_set(&preset) {
                return;
            }
            let depth = self.history_union(&preset).len() + 1;
            self.seen.insert((t, preset.clone()));
            self.queue.push(Reverse(Candidate {
                depth,
                transition: t,
                preset,
            }));
            return;
        }
        for &c in &slots[i] {
            chosen.push(c);
            self.combine(t, slots, chosen, i + 1);
            chosen.pop();
        }
    }

    /// The marking reached by the configuration `config` (an event set).
    fn mark_of_config(&self, config: &BitSet) -> Marking {
        let mut cut: HashSet<ConditionId> = self.initial_cut.iter().copied().collect();
        for e in config.iter() {
            for &b in &self.events[e].postset {
                cut.insert(b);
            }
        }
        for e in config.iter() {
            for &b in &self.events[e].preset {
                cut.remove(&b);
            }
        }
        Marking::from_places(
            self.net.place_count(),
            cut.iter().map(|&b| self.conditions[b.index()].place),
        )
    }

    fn add_event(&mut self, cand: Candidate) -> EventId {
        let id = EventId(self.events.len() as u32);
        // local configuration = histories of the preset + the event itself
        let mut local = Self::pad(&self.history_union(&cand.preset), self.events.len() + 1);
        local.insert(id.index());
        let depth = local.len();
        debug_assert_eq!(depth, cand.depth);

        for &b in &cand.preset {
            self.conditions[b.index()].consumers.push(id);
        }
        let postset: Vec<ConditionId> = self
            .net
            .post_places(cand.transition)
            .to_vec()
            .into_iter()
            .map(|p| self.add_condition(p, Some(id)))
            .collect();

        self.events.push(Event {
            transition: cand.transition,
            preset: cand.preset,
            postset: postset.clone(),
            local_config: local.clone(),
            depth,
            mark: Marking::empty(0), // filled below
            cutoff: false,
        });
        let mark = self.mark_of_config(&local);

        // McMillan cut-off: some strictly smaller configuration (possibly
        // the empty one) already reaches this marking
        let cutoff = match self.marks.get(&mark) {
            Some(&d) => d < depth,
            None => false,
        };
        self.marks.entry(mark.clone()).or_insert(depth);
        let ev = &mut self.events[id.index()];
        ev.mark = mark;
        ev.cutoff = cutoff;

        if !cutoff {
            for b in postset {
                self.enqueue_extensions_with(b);
            }
        }
        id
    }
}

impl Unfolding {
    /// Builds the finite complete prefix with default options.
    ///
    /// # Errors
    ///
    /// Returns [`UnfoldError::EventLimit`] if the prefix exceeds the
    /// default event budget.
    pub fn build(net: &PetriNet) -> Result<Self, UnfoldError> {
        Self::build_with(net, &UnfoldOptions::default())
    }

    /// Builds the finite complete prefix with explicit options.
    ///
    /// This is the legacy all-or-nothing entry point; a hit event limit
    /// discards the partial prefix. Prefer
    /// [`build_bounded`](Self::build_bounded) for graceful degradation.
    ///
    /// # Errors
    ///
    /// Returns [`UnfoldError::EventLimit`] when `opts.max_events` is
    /// exceeded.
    pub fn build_with(net: &PetriNet, opts: &UnfoldOptions) -> Result<Self, UnfoldError> {
        match Self::build_bounded(net, opts, &Budget::default()) {
            Outcome::Complete(unf) => Ok(unf),
            Outcome::Partial { .. } => Err(UnfoldError::EventLimit(opts.max_events)),
        }
    }

    /// Builds the prefix under a cooperative resource [`Budget`].
    ///
    /// The budget's state axis counts *events* and its effective cap is the
    /// tighter of `opts.max_events` and `budget.max_states`. On exhaustion
    /// the prefix built so far is returned as [`Outcome::Partial`]. A
    /// partial prefix is a genuine prefix of the unfolding — every marking
    /// of one of its configurations is reachable, so a deadlock found via
    /// [`has_deadlock`](Self::has_deadlock) on it is real — but it is not
    /// marking-complete, so the absence of one proves nothing.
    pub fn build_bounded(net: &PetriNet, opts: &UnfoldOptions, budget: &Budget) -> Outcome<Self> {
        let start = Instant::now();
        let budget = budget.clone().cap_states(opts.max_events);
        let mut b = Builder::new(net);
        let mut bytes = b.conditions.len() * CONDITION_BYTES;
        let mut exhausted = None;
        while let Some(Reverse(cand)) = b.queue.pop() {
            // `+ 1` asks "may one more event be added?", so the prefix
            // never exceeds the cap — matching the legacy event limit
            if let Some(reason) = budget.exceeded(b.events.len() + 1, bytes) {
                b.queue.push(Reverse(cand));
                exhausted = Some(reason);
                break;
            }
            b.add_event(cand);
            let ev = b.events.last().expect("just added");
            bytes += EVENT_BYTES
                + ev.mark.approx_bytes()
                + ev.local_config.capacity().div_ceil(64) * 8
                + (ev.preset.len() + ev.postset.len()) * 4
                + ev.postset.len() * CONDITION_BYTES;
        }
        let elapsed = start.elapsed();
        let events = b.events.len();
        let pending = b.queue.len();
        let unf = Unfolding {
            prefix: Prefix {
                conditions: b.conditions,
                events: b.events,
                initial_cut: b.initial_cut,
            },
        };
        match exhausted {
            None => Outcome::Complete(unf),
            Some(reason) => Outcome::Partial {
                result: unf,
                // re-classify at the stop: a cancel raised while the
                // reason was latched must win deterministically
                reason: budget.stop_reason(reason),
                coverage: CoverageStats {
                    states_stored: events,
                    states_expanded: events,
                    frontier_len: pending,
                    bytes_estimate: bytes,
                    elapsed,
                },
            },
        }
    }

    /// The built prefix.
    pub fn prefix(&self) -> &Prefix {
        &self.prefix
    }

    /// Enumerates every reachable marking of the original net by breadth-
    /// first search over the cuts of the prefix — the marking-completeness
    /// theorem makes this exhaustive. Used as the correctness bridge in
    /// tests and for the deadlock verdict.
    pub fn reachable_markings(&self, net: &PetriNet) -> HashSet<Marking> {
        let p = &self.prefix;
        let initial: Vec<ConditionId> = {
            let mut v = p.initial_cut.clone();
            v.sort();
            v
        };
        let mut seen_cuts: HashSet<Vec<ConditionId>> = HashSet::new();
        let mut marks: HashSet<Marking> = HashSet::new();
        let mut queue = VecDeque::new();
        seen_cuts.insert(initial.clone());
        marks.insert(p.marking_of_cut(&initial, net));
        queue.push_back(initial);
        while let Some(cut) = queue.pop_front() {
            for e in p.events() {
                let ev = &p.events[e.index()];
                if !ev.preset.iter().all(|b| cut.binary_search(b).is_ok()) {
                    continue;
                }
                let mut next: Vec<ConditionId> = cut
                    .iter()
                    .copied()
                    .filter(|b| !ev.preset.contains(b))
                    .chain(ev.postset.iter().copied())
                    .collect();
                next.sort();
                if seen_cuts.insert(next.clone()) {
                    marks.insert(p.marking_of_cut(&next, net));
                    queue.push_back(next);
                }
            }
        }
        marks
    }

    /// Deadlock verdict via the prefix: some reachable marking enables no
    /// transition.
    pub fn has_deadlock(&self, net: &PetriNet) -> bool {
        self.reachable_markings(net).iter().any(|m| net.is_dead(m))
    }

    /// The smallest reachable marking (by [`Marking`]'s order) satisfying
    /// the **goal predicate** of `property` (φ under `EF`, ¬φ under `AG`),
    /// or `None` if the prefix reaches no goal marking. On a complete
    /// prefix `None` settles the property; on a partial one a found
    /// marking is still genuinely reachable, so the witness is real.
    pub fn goal_marking(
        &self,
        net: &PetriNet,
        property: &petri::CompiledProperty,
    ) -> Option<Marking> {
        self.reachable_markings(net)
            .into_iter()
            .filter(|m| property.goal(net, m))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petri::{NetBuilder, ReachabilityGraph};

    #[test]
    fn fig1_prefix_is_the_net_itself() {
        let net = models::figures::fig1();
        let unf = Unfolding::build(&net).unwrap();
        assert_eq!(unf.prefix().event_count(), 3);
        assert_eq!(unf.prefix().condition_count(), 6);
        assert_eq!(unf.prefix().cutoff_count(), 0);
        // vs 8 states of the reachability graph — the concurrency win
        assert_eq!(ReachabilityGraph::explore(&net).unwrap().state_count(), 8);
    }

    #[test]
    fn fig2_prefix_is_linear_in_n() {
        for n in 1..=6 {
            let net = models::figures::fig2(n);
            let unf = Unfolding::build(&net).unwrap();
            assert_eq!(unf.prefix().event_count(), 2 * n, "n={n}");
            assert_eq!(unf.prefix().condition_count(), 3 * n, "n={n}");
            // vs 3^n reachable markings
        }
    }

    #[test]
    fn cycle_terminates_with_one_cutoff() {
        let mut b = NetBuilder::new("cycle");
        let p = b.place_marked("p");
        let q = b.place("q");
        b.transition("go", [p], [q]);
        b.transition("back", [q], [p]);
        let net = b.build().unwrap();
        let unf = Unfolding::build(&net).unwrap();
        assert_eq!(unf.prefix().event_count(), 2);
        assert_eq!(unf.prefix().cutoff_count(), 1, "back reaches m0 again");
    }

    #[test]
    fn choice_between_branches_unfolds_both() {
        let mut b = NetBuilder::new("choice");
        let p = b.place_marked("p");
        let x = b.place("x");
        let y = b.place("y");
        b.transition("a", [p], [x]);
        b.transition("b", [p], [y]);
        let net = b.build().unwrap();
        let unf = Unfolding::build(&net).unwrap();
        assert_eq!(unf.prefix().event_count(), 2, "both branches present");
        let marks = unf.reachable_markings(&net);
        assert_eq!(marks.len(), 3);
    }

    #[test]
    fn synchronization_needs_co_set() {
        // t needs both p and q: only one instance of t despite two paths
        let mut b = NetBuilder::new("sync");
        let p = b.place_marked("p");
        let q = b.place_marked("q");
        let r = b.place("r");
        b.transition("t", [p, q], [r]);
        let net = b.build().unwrap();
        let unf = Unfolding::build(&net).unwrap();
        assert_eq!(unf.prefix().event_count(), 1);
    }

    #[test]
    fn conflicting_histories_are_not_co() {
        // a|b choice, then join c needs outputs of both a and b: impossible
        let mut b = NetBuilder::new("xor-join");
        let p = b.place_marked("p");
        let x = b.place("x");
        let y = b.place("y");
        let z = b.place("z");
        b.transition("a", [p], [x]);
        b.transition("b", [p], [y]);
        b.transition("c", [x, y], [z]);
        let net = b.build().unwrap();
        let unf = Unfolding::build(&net).unwrap();
        // c never fires: x and y come from conflicting branches
        assert_eq!(unf.prefix().event_count(), 2);
        let rg = ReachabilityGraph::explore(&net).unwrap();
        assert_eq!(unf.reachable_markings(&net).len(), rg.state_count());
    }

    #[test]
    fn event_limit_enforced() {
        let err =
            Unfolding::build_with(&models::nsdp(2), &UnfoldOptions { max_events: 3 }).unwrap_err();
        assert_eq!(err, UnfoldError::EventLimit(3));
    }

    #[test]
    fn bounded_build_returns_partial_prefix() {
        use petri::ExhaustionReason;
        let net = models::nsdp(2);
        let outcome = Unfolding::build_bounded(
            &net,
            &UnfoldOptions::default(),
            &Budget::default().cap_states(3),
        );
        let Outcome::Partial {
            result,
            reason,
            coverage,
        } = outcome
        else {
            panic!("expected a partial outcome");
        };
        assert_eq!(reason, ExhaustionReason::States);
        assert_eq!(result.prefix().event_count(), 3, "cap never exceeded");
        assert_eq!(coverage.states_stored, 3);
        assert!(coverage.frontier_len > 0, "candidates were left queued");
        // markings of the partial prefix are genuinely reachable
        let rg = ReachabilityGraph::explore(&net).unwrap();
        for m in result.reachable_markings(&net) {
            assert!(rg.contains(&m));
        }
    }

    #[test]
    fn marking_completeness_on_benchmarks() {
        for net in [
            models::figures::fig7(),
            models::overtake(2),
            models::readers_writers(3),
            models::nsdp(2),
        ] {
            let unf = Unfolding::build(&net).unwrap();
            let rg = ReachabilityGraph::explore(&net).unwrap();
            let marks = unf.reachable_markings(&net);
            assert_eq!(marks.len(), rg.state_count(), "{}", net.name());
            for s in rg.states() {
                assert!(marks.contains(rg.marking(s)), "{}", net.name());
            }
            assert_eq!(unf.has_deadlock(&net), rg.has_deadlock(), "{}", net.name());
        }
    }

    #[test]
    fn goal_marking_agrees_with_explicit_search() {
        use petri::Property;
        let net = models::readers_writers(3);
        let unf = Unfolding::build(&net).unwrap();
        let rg = ReachabilityGraph::explore(&net).unwrap();
        for text in ["EF deadlock", "EF m(writing0) >= 1", "AG m(writing0) = 0"] {
            let compiled = Property::parse(text).unwrap().compile(&net).unwrap();
            let expected = rg
                .states()
                .map(|s| rg.marking(s))
                .filter(|m| compiled.goal(&net, m))
                .min()
                .cloned();
            assert_eq!(unf.goal_marking(&net, &compiled), expected, "{text}");
        }
    }

    #[test]
    fn dot_export_is_well_formed() {
        let net = models::figures::fig2(2);
        let unf = Unfolding::build(&net).unwrap();
        let dot = unf.prefix().to_dot(&net);
        assert!(dot.starts_with("digraph prefix"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=box"));
        assert!(dot.ends_with("}\n"));
    }
}
