//! Differential property tests: the finite complete prefix must reproduce
//! exactly the reachable-marking set of exhaustive exploration on random
//! safe nets — completeness and soundness in one assertion.

use models::random::{random_safe_net, RandomNetConfig};
use petri::ReachabilityGraph;
use proptest::prelude::*;
use unfolding::{UnfoldOptions, Unfolding};

fn cfg() -> RandomNetConfig {
    RandomNetConfig {
        components: 2,
        places_per_component: 3,
        resources: 1,
        resource_use_prob: 0.4,
        choice_prob: 0.6,
        max_states: 1_500,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Marking completeness and soundness: the prefix reaches exactly the
    /// markings the full graph reaches.
    #[test]
    fn prefix_markings_equal_reachability_graph(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let Ok(unf) = Unfolding::build_with(&net, &UnfoldOptions { max_events: 20_000 }) else {
            return Ok(());
        };
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        let marks = unf.reachable_markings(&net);
        prop_assert_eq!(
            marks.len(),
            rg.state_count(),
            "marking sets differ\n{}",
            petri::to_text(&net)
        );
        for s in rg.states() {
            prop_assert!(marks.contains(rg.marking(s)), "missing marking {}", rg.marking(s));
        }
    }

    /// Deadlock verdicts agree with the ground truth.
    #[test]
    fn prefix_deadlock_verdict_matches(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let Ok(unf) = Unfolding::build_with(&net, &UnfoldOptions { max_events: 20_000 }) else {
            return Ok(());
        };
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        prop_assert_eq!(unf.has_deadlock(&net), rg.has_deadlock(), "\n{}", petri::to_text(&net));
    }

    /// Cut-off events never open new behaviour: removing their successors
    /// (which the construction already does) still covers every marking —
    /// checked implicitly above — and every event's local marking is
    /// genuinely reachable.
    #[test]
    fn event_marks_are_reachable(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let Ok(unf) = Unfolding::build_with(&net, &UnfoldOptions { max_events: 20_000 }) else {
            return Ok(());
        };
        let rg = ReachabilityGraph::explore(&net).expect("validated safe");
        for e in unf.prefix().events() {
            prop_assert!(
                rg.contains(unf.prefix().mark_of(e)),
                "Mark([e]) unreachable for event of {}",
                net.transition_name(unf.prefix().transition_of(e))
            );
        }
    }
}
