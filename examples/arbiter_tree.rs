//! Asynchronous arbiter tree (ASAT): verify mutual exclusion and
//! termination of a tournament arbitration round, and show how the four
//! engines scale on a net that mixes deep concurrency (users act in
//! parallel) with choices (each cell latches one child).
//!
//! Run with: `cargo run --release --example arbiter_tree [-- n]`

use gpo_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8);
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two >= 2"
    );

    println!("asynchronous arbiter tree, users = 2..={n}\n");
    println!(
        "{:>3} | {:>12} | {:>10} | {:>10} | {:>12}",
        "n", "full states", "PO states", "GPN states", "|r0|"
    );
    let mut k = 2;
    while k <= n {
        let net = models::asat(k);
        let full = ReachabilityGraph::explore(&net)?;
        let po = ReducedReachability::explore(&net)?;
        let gpo = analyze_with(
            &net,
            &GpoOptions {
                valid_set_limit: 1 << 24,
                ..Default::default()
            },
        )?;
        println!(
            "{k:>3} | {:>12} | {:>10} | {:>10} | {:>12}",
            full.state_count(),
            po.state_count(),
            gpo.state_count,
            gpo.valid_set_count
        );

        // safety property: never two users in the critical section —
        // checked on the exhaustive graph
        let using: Vec<PlaceId> = (0..k)
            .map(|u| {
                net.place_by_name(&format!("using{u}"))
                    .expect("place exists")
            })
            .collect();
        for s in full.states() {
            let m = full.marking(s);
            let inside = using.iter().filter(|&&p| m.is_marked(p)).count();
            assert!(inside <= 1, "mutual exclusion violated");
        }
        k *= 2;
    }

    println!("\nmutual exclusion holds at every size; the generalized analysis");
    println!("needs a handful of GPN states (one per protocol phase) while the");
    println!("full graph squares with every doubling of the tree.");
    Ok(())
}
