//! The paper's flagship benchmark: non-serialized dining philosophers.
//!
//! Reproduces the NSDP rows of Table 1 — the full state space grows as the
//! Lucas numbers `L₃ₙ` while the generalized analysis needs **3 GPN states
//! regardless of the number of philosophers** — and prints the deadlock
//! witness it finds (everyone holding one fork).
//!
//! Run with: `cargo run --release --example dining_philosophers [-- n]`

use gpo_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(6);

    println!("non-serialized dining philosophers, n = 2..={n}\n");
    println!(
        "{:>3} | {:>12} | {:>10} | {:>10} | deadlock",
        "n", "full states", "PO states", "GPN states"
    );
    for k in (2..=n).step_by(2) {
        let net = models::nsdp(k);
        let full = ReachabilityGraph::explore(&net)?;
        let po = ReducedReachability::explore(&net)?;
        let gpo = analyze_with(
            &net,
            &GpoOptions {
                valid_set_limit: 1 << 24,
                max_witnesses: 2,
                ..Default::default()
            },
        )?;
        println!(
            "{k:>3} | {:>12} | {:>10} | {:>10} | {}",
            full.state_count(),
            po.state_count(),
            gpo.state_count,
            gpo.deadlock_possible
        );
        assert_eq!(gpo.state_count, 3, "the paper's headline: 3 states, any n");

        if k == 2 {
            println!("\n  witnesses extracted by the generalized analysis at n = 2:");
            for w in &gpo.deadlock_witnesses {
                println!("    {}", net.display_marking(w));
            }
            println!("  (every philosopher holds one fork — the circular wait)\n");
        }
    }

    println!("\nthe generalized analysis detects the circular-wait deadlock in");
    println!("3 GPN states independent of n, versus a Lucas-number-sized full");
    println!("state space (18, 322, 5778, 103682, ... = L(3n)).");
    Ok(())
}
