//! Engine shootout on a user-supplied `.net` file (or a built-in model):
//! runs all four engines, times them, and cross-checks the verdicts —
//! the downstream-user workflow this library is built for.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example engine_shootout             # readers-writers demo
//! cargo run --release --example engine_shootout -- my.net   # your own net
//! ```

use std::time::Instant;

use gpo_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = match std::env::args().nth(1) {
        Some(path) => parse_net(&std::fs::read_to_string(&path)?)?,
        None => models::readers_writers(10),
    };
    println!(
        "net `{}`: {} places, {} transitions\n",
        net.name(),
        net.place_count(),
        net.transition_count()
    );

    let t0 = Instant::now();
    let full = ReachabilityGraph::explore(&net)?;
    let t_full = t0.elapsed();

    let t0 = Instant::now();
    let po = ReducedReachability::explore(&net)?;
    let t_po = t0.elapsed();

    let t0 = Instant::now();
    let bdd = SymbolicReachability::explore(&net);
    let t_bdd = t0.elapsed();

    let t0 = Instant::now();
    let gpo = analyze_with(
        &net,
        &GpoOptions {
            valid_set_limit: 1 << 24,
            ..Default::default()
        },
    )?;
    let t_gpo = t0.elapsed();

    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "engine", "states", "aux", "time"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.3?}",
        "exhaustive",
        full.state_count(),
        "-",
        t_full
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.3?}",
        "stubborn",
        po.state_count(),
        "-",
        t_po
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.3?}",
        "bdd",
        bdd.state_count(),
        format!("{} nodes", bdd.peak_live_nodes()),
        t_bdd
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.3?}",
        "generalized",
        gpo.state_count,
        format!("|r0|={}", gpo.valid_set_count),
        t_gpo
    );

    let verdicts = [
        full.has_deadlock(),
        po.has_deadlock(),
        bdd.has_deadlock(),
        gpo.deadlock_possible,
    ];
    println!(
        "\nverdict: {}",
        if verdicts[0] {
            "DEADLOCK possible"
        } else {
            "deadlock-free"
        }
    );
    assert!(
        verdicts.windows(2).all(|w| w[0] == w[1]),
        "engines disagree: {verdicts:?}"
    );
    println!("all four engines agree.");
    Ok(())
}
