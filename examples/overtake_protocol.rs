//! Overtake protocol (OVER): a convoy where every car resolves two
//! visible choices. Shows the paper's point that *choices* — unlike pure
//! concurrency — survive classical partial-order reduction: the reduced
//! graph keeps growing geometrically while the generalized analysis stays
//! flat.
//!
//! Run with: `cargo run --release --example overtake_protocol [-- n]`

use gpo_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(6);

    println!("overtake protocol, cars = 1..={n}\n");
    println!(
        "{:>3} | {:>12} | {:>10} | {:>10} | outcomes",
        "n", "full (8^n)", "PO states", "GPN states"
    );
    for k in 1..=n {
        let net = models::overtake(k);
        let full = ReachabilityGraph::explore(&net)?;
        let po = ReducedReachability::explore(&net)?;
        let gpo = analyze(&net)?;
        // terminal states = one of 3 resolved outcomes per car
        let outcomes = full.deadlocks().len();
        println!(
            "{k:>3} | {:>12} | {:>10} | {:>10} | {outcomes} (= 3^{k})",
            full.state_count(),
            po.state_count(),
            gpo.state_count,
        );
        assert_eq!(full.state_count(), 8usize.pow(k as u32));
        assert_eq!(outcomes, 3usize.pow(k as u32));
    }

    // replay one concrete maneuver on the smallest instance
    let net = models::overtake(1);
    let seq: Vec<TransitionId> = [
        "signalOut1",
        "approach1",
        "accept1",
        "enterLane1",
        "passQuick1",
    ]
    .iter()
    .map(|s| net.transition_by_name(s).expect("transition exists"))
    .collect();
    let m = net
        .fire_sequence(net.initial_marking(), seq)?
        .expect("the maneuver fires in order");
    println!(
        "\none resolved maneuver ends in {}",
        net.display_marking(&m)
    );
    println!("\nPO reduction cannot merge the 3^n resolved outcomes (they are");
    println!("distinct markings); the generalized analysis runs all cars'");
    println!("stages simultaneously and stays constant-size.");
    Ok(())
}
