//! Quickstart: build a small net with the builder API, verify it with all
//! four engines, and print what each one sees.
//!
//! Run with: `cargo run --example quickstart`

use gpo_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny mutual-exclusion net with a twist: two workers share a tool,
    // and each may also break it (a choice) — after which nobody works.
    let mut b = NetBuilder::new("workshop");
    let tool = b.place_marked("tool");
    let broken = b.place("broken");
    let mut idles = Vec::new();
    for w in 0..2 {
        let idle = b.place_marked(format!("idle{w}"));
        let busy = b.place(format!("busy{w}"));
        b.transition(format!("grab{w}"), [idle, tool], [busy]);
        b.transition(format!("drop{w}"), [busy], [idle, tool]);
        b.transition(format!("snap{w}"), [idle, tool], [broken]);
        idles.push(idle);
    }
    let net = b.build()?;
    println!("{net}\n");

    // Engine 1: exhaustive reachability — the ground truth.
    let report = verify(&net)?;
    println!(
        "exhaustive : {} states, deadlock = {}",
        report.state_count, report.has_deadlock
    );
    if let Some(trace) = &report.deadlock_witness {
        let names: Vec<&str> = trace.iter().map(|&t| net.transition_name(t)).collect();
        println!("             witness trace: {}", names.join(" -> "));
    }

    // Engine 2: stubborn-set partial-order reduction.
    let reduced = ReducedReachability::explore(&net)?;
    println!(
        "stubborn   : {} states, deadlock = {}",
        reduced.state_count(),
        reduced.has_deadlock()
    );

    // Engine 3: symbolic reachability on a from-scratch BDD engine.
    let symbolic = SymbolicReachability::explore(&net);
    println!(
        "symbolic   : {} states, {} peak BDD nodes, deadlock = {}",
        symbolic.state_count(),
        symbolic.peak_live_nodes(),
        symbolic.has_deadlock()
    );

    // Engine 4: the paper's generalized partial order analysis.
    let gpo = analyze(&net)?;
    println!(
        "generalized: {} GPN states, |r0| = {}, deadlock = {}",
        gpo.state_count, gpo.valid_set_count, gpo.deadlock_possible
    );
    for w in &gpo.deadlock_witnesses {
        println!("             dead marking: {}", net.display_marking(w));
    }

    assert_eq!(report.has_deadlock, gpo.deadlock_possible);
    assert_eq!(report.has_deadlock, reduced.has_deadlock());
    assert_eq!(report.has_deadlock, symbolic.has_deadlock());
    println!("\nall four engines agree.");
    Ok(())
}
