//! The whole zoo on one net: exhaustive exploration, stubborn-set
//! reduction, BDD reachability, the paper's generalized analysis, a
//! McMillan unfolding prefix, and a timed variant of the same system —
//! each attacking state explosion from a different angle.
//!
//! Run with: `cargo run --release --example technique_zoo`

use gpo_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the paper's Figure 2 with N = 6: six concurrently marked choices
    let n = 6;
    let net = models::figures::fig2(n);
    println!(
        "net: {} ({} places, {} transitions)\n",
        net.name(),
        net.place_count(),
        net.transition_count()
    );

    let full = ReachabilityGraph::explore(&net)?;
    println!(
        "exhaustive graph      : {:>6} states   (3^{n})",
        full.state_count()
    );

    let po = ReducedReachability::explore(&net)?;
    println!(
        "stubborn reduction    : {:>6} states   (2^(N+1)-1 — choices survive)",
        po.state_count()
    );

    let bdd = SymbolicReachability::explore(&net);
    println!(
        "BDD reachability      : {:>6} states   ({} peak nodes)",
        bdd.state_count(),
        bdd.peak_live_nodes()
    );

    let gpo = analyze(&net)?;
    println!(
        "generalized analysis  : {:>6} states   (all choices fired at once)",
        gpo.state_count
    );

    let unf = Unfolding::build(&net)?;
    println!(
        "unfolding prefix      : {:>6} events   ({} conditions — branches side by side)",
        unf.prefix().event_count(),
        unf.prefix().condition_count()
    );

    // now give each choice a timing: A_i wins its race when its window
    // closes before B_i's opens
    let mut timed = TimedNet::new(net.clone());
    for i in 0..n {
        let a = net.transition_by_name(&format!("A{i}")).expect("exists");
        let b = net.transition_by_name(&format!("B{i}")).expect("exists");
        timed = timed
            .with_interval(a, Interval::new(0, 1))
            .with_interval(b, Interval::new(3, 4));
    }
    let classes = ClassGraph::explore(&timed)?;
    println!(
        "timed class graph     : {:>6} classes  (every race decided by time)",
        classes.class_count()
    );

    // timing resolves all n binary choices: the B side never fires, so the
    // reachable markings are exactly the 2^n subsets of fired A's
    assert_eq!(classes.reachable_markings().len(), 1 << n);
    for i in 0..n {
        let b = net.transition_by_name(&format!("B{i}")).expect("exists");
        assert!(
            classes.edges().iter().all(|&(_, t, _)| t != b),
            "B{i} should lose every race"
        );
    }
    assert_eq!(gpo.state_count, 2);
    println!("\nsix techniques, one net — and the deadlock verdict agrees everywhere:");
    let verdicts = [
        full.has_deadlock(),
        po.has_deadlock(),
        bdd.has_deadlock(),
        gpo.deadlock_possible,
        unf.has_deadlock(&net),
        classes.has_deadlock(),
    ];
    println!("  {verdicts:?}");
    assert!(verdicts.iter().all(|&v| v == verdicts[0]));
    Ok(())
}
