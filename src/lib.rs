//! # gpo-suite — Generalized Partial Order Analysis, end to end
//!
//! Umbrella crate of the reproduction of *"Efficient Verification using
//! Generalized Partial Order Analysis"* (Vercauteren, Verkest, de Jong,
//! Lin — DATE 1998). It re-exports the whole stack so the repository's
//! `examples/` and `tests/` can exercise every layer through one
//! dependency:
//!
//! * [`petri`] — safe Petri nets, classical firing, exhaustive
//!   reachability, conflicts, invariants, parsing and DOT export;
//! * [`partial_order`] — stubborn-set / anticipation reduction (the
//!   SPIN+PO stand-in);
//! * [`symbolic`] — from-scratch BDD and ZDD engines and symbolic
//!   reachability (the SMV stand-in);
//! * [`gpo_core`] — Generalized Petri Nets and the generalized analysis
//!   (the paper's contribution);
//! * [`models`] — the NSDP / ASAT / OVER / RW benchmarks and the paper's
//!   figure nets;
//! * [`unfolding`] — McMillan finite complete prefixes (the related
//!   conflict-aware technique of the paper's related work);
//! * [`timed`] — Time Petri nets and Berthomieu–Diaz state-class graphs
//!   (the paper's §5 outlook).
//!
//! # Quickstart
//!
//! ```
//! use gpo_suite::prelude::*;
//!
//! let net = models::nsdp(4);                       // 4 dining philosophers
//! let full = ReachabilityGraph::explore(&net)?;    // 322 states (Table 1)
//! let gpo = analyze(&net)?;                        // 3 GPN states
//! assert_eq!(full.state_count(), 322);
//! assert_eq!(gpo.state_count, 3);
//! assert_eq!(gpo.deadlock_possible, full.has_deadlock());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use gpo_core;
pub use models;
pub use partial_order;
pub use petri;
pub use symbolic;
pub use timed;
pub use unfolding;

/// The most common imports in one place.
pub mod prelude {
    pub use gpo_core::{
        analyze, analyze_bounded, analyze_with, GpnState, GpoOptions, GpoReport, Representation,
        SetFamily,
    };
    pub use models;
    pub use partial_order::{ReducedOptions, ReducedReachability, SeedStrategy};
    pub use petri::{
        parse_net, reduce, to_text, verify, verify_bounded, verify_bounded_reduced, Budget,
        CoverageStats, ExhaustionReason, Marking, NetBuilder, Outcome, PetriNet, PlaceId,
        ReachabilityGraph, ReduceOptions, Reduction, ReductionReport, TransitionId, Verdict,
    };
    pub use symbolic::{SymbolicOptions, SymbolicReachability};
    pub use timed::{ClassGraph, Interval, TimedNet};
    pub use unfolding::Unfolding;
}
