//! Budget-governed exploration properties (README §resource budgets): a
//! partial exploration must be a *sound prefix* of the full one — every
//! marking it stores is reachable — for every thread count, and its
//! coverage stats must be internally consistent.

use std::collections::BTreeSet;

use gpo_suite::prelude::*;
use models::random::{random_safe_net, RandomNetConfig};
use petri::ExploreOptions;
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

fn cfg() -> RandomNetConfig {
    RandomNetConfig {
        components: 3,
        places_per_component: 4,
        resources: 2,
        resource_use_prob: 0.4,
        choice_prob: 0.5,
        max_states: 4_000,
    }
}

fn marking_set(rg: &ReachabilityGraph) -> BTreeSet<Marking> {
    rg.states().map(|s| rg.marking(s).clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The state set of a budget-limited exploration is a subset of the
    /// full exploration's, at every thread count — partial results never
    /// invent unreachable markings (the soundness base of partial
    /// deadlock counterexamples).
    #[test]
    fn partial_states_are_subset_of_full(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let full = ReachabilityGraph::explore(&net).expect("validated safe");
        let reachable = marking_set(&full);
        let cap = (full.state_count() / 2).max(1);
        for threads in THREADS {
            let outcome = ReachabilityGraph::explore_bounded(
                &net,
                &ExploreOptions { threads, ..Default::default() },
                &Budget::default().cap_states(cap),
            ).expect("validated safe");
            let rg = outcome.into_value();
            let partial = marking_set(&rg);
            prop_assert!(
                partial.is_subset(&reachable),
                "threads={}: partial set invented unreachable markings\n{}",
                threads,
                to_text(&net)
            );
        }
    }

    /// Coverage stats of a partial run are consistent: stored = expanded +
    /// frontier, stored never exceeds the cap by more than the bounded
    /// overshoot (one successor per worker — the budget is re-checked
    /// between successor insertions, not just between expansions), and a
    /// complete run is only reported when the budget genuinely covered
    /// the space.
    #[test]
    fn coverage_stats_are_consistent(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let full = ReachabilityGraph::explore(&net).expect("validated safe");
        let cap = (full.state_count() / 2).max(1);
        for threads in THREADS {
            let outcome = ReachabilityGraph::explore_bounded(
                &net,
                &ExploreOptions { threads, ..Default::default() },
                &Budget::default().cap_states(cap),
            ).expect("validated safe");
            match outcome {
                Outcome::Complete(rg) => {
                    prop_assert!(
                        rg.state_count() <= cap,
                        "threads={threads}: complete run over budget"
                    );
                    prop_assert_eq!(rg.state_count(), full.state_count());
                }
                Outcome::Partial { result, coverage, .. } => {
                    prop_assert_eq!(
                        coverage.states_stored,
                        result.state_count(),
                        "threads={}", threads
                    );
                    prop_assert_eq!(
                        coverage.states_expanded + coverage.frontier_len,
                        coverage.states_stored,
                        "threads={}", threads
                    );
                    let overshoot = threads.max(1);
                    prop_assert!(
                        coverage.states_stored <= cap + overshoot,
                        "threads={}: stored {} > cap {} + overshoot {}",
                        threads, coverage.states_stored, cap, overshoot
                    );
                }
            }
        }
    }

    /// Cancellation before the run stores at most the initial state's
    /// expansion, at every thread count.
    #[test]
    fn pre_cancelled_budget_stops_immediately(seed in 0u64..50_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        let budget = Budget::default();
        budget.cancel();
        for threads in THREADS {
            let outcome = ReachabilityGraph::explore_bounded(
                &net,
                &ExploreOptions { threads, ..Default::default() },
                &budget,
            ).expect("validated safe");
            prop_assert_eq!(outcome.reason(), Some(ExhaustionReason::Cancelled));
            let fanout = net.transition_count();
            prop_assert!(
                outcome.value().state_count() <= 1 + threads.max(1) * fanout,
                "threads={}: {} states explored after cancellation",
                threads,
                outcome.value().state_count()
            );
        }
    }
}

/// Regression for the unbounded budget overshoot: one hub state firing
/// into `n` distinct leaves used to blow past `max_states`/`max_bytes` by
/// the whole fan-out, because the budget was only consulted between
/// expansions. With the per-successor re-check the overshoot is at most
/// one successor per worker, on both axes, at every thread count.
#[test]
fn wide_fanout_overshoot_is_bounded_per_worker() {
    use petri::parallel::STATE_OVERHEAD_BYTES;

    let fanout = 256;
    let mut b = NetBuilder::new("star");
    let hub = b.place_marked("hub");
    for i in 0..fanout {
        let leaf = b.place(format!("leaf{i}"));
        b.transition(format!("t{i}"), [hub], [leaf]);
    }
    let net = b.build().unwrap();
    let full = ReachabilityGraph::explore(&net).unwrap();
    let max_state_bytes = full
        .states()
        .map(|s| full.marking(s).approx_bytes() + STATE_OVERHEAD_BYTES)
        .max()
        .unwrap();

    for threads in THREADS {
        let state_cap = 4;
        let outcome = ReachabilityGraph::explore_bounded(
            &net,
            &ExploreOptions {
                threads,
                record_edges: false,
                ..Default::default()
            },
            &Budget::default().cap_states(state_cap),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::States));
        let coverage = outcome.coverage().unwrap().clone();
        assert!(
            coverage.states_stored > state_cap,
            "threads={threads}: limit was actually hit"
        );
        assert!(
            coverage.states_stored <= state_cap + threads.max(1),
            "threads={threads}: stored {} states, cap {state_cap}",
            coverage.states_stored
        );
        assert_eq!(
            coverage.states_expanded + coverage.frontier_len,
            coverage.states_stored,
            "threads={threads}"
        );

        let byte_cap = 700;
        let outcome = ReachabilityGraph::explore_bounded(
            &net,
            &ExploreOptions {
                threads,
                record_edges: false,
                ..Default::default()
            },
            &Budget::default().cap_bytes(byte_cap),
        )
        .unwrap();
        assert_eq!(outcome.reason(), Some(ExhaustionReason::Memory));
        let coverage = outcome.coverage().unwrap().clone();
        assert!(
            coverage.bytes_estimate > byte_cap,
            "threads={threads}: limit was actually hit"
        );
        assert!(
            coverage.bytes_estimate <= byte_cap + threads.max(1) * max_state_bytes,
            "threads={threads}: estimate {} bytes, cap {byte_cap}, \
             per-worker slack {max_state_bytes}",
            coverage.bytes_estimate
        );
    }
}
