//! Cancellation soundness across the engine portfolio (README §resource
//! budgets): tripping a budget's cancel flag must always surface as an
//! honest partial outcome — `exhausted = Cancelled`, never a fabricated
//! `DeadlockFree`, and never misattributed to a deadline that also
//! expired. This is the contract the portfolio supervisor's cancel storm
//! and `julie serve`'s drain are built on.

use std::time::Duration;

use gpo_suite::prelude::*;
use julie::engine::{run_engine, RunSpec};
use models::random::{random_safe_net, RandomNetConfig};
use petri::{CheckpointConfig, Property};
use proptest::prelude::*;

/// Every engine the portfolio can race.
const ENGINES: [&str; 5] = ["full", "po", "gpo", "bdd", "unfold"];
const THREADS: [usize; 2] = [1, 8];

fn cfg() -> RandomNetConfig {
    RandomNetConfig {
        components: 3,
        places_per_component: 4,
        resources: 2,
        resource_use_prob: 0.4,
        choice_prob: 0.5,
        max_states: 4_000,
    }
}

fn spec(engine: &str, threads: usize) -> RunSpec {
    RunSpec {
        engine: engine.to_string(),
        zdd: false,
        witnesses: 1,
        threads,
        property: Property::deadlock(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A cancelled run reports `Cancelled` on every engine at every
    /// thread count, never claims `DeadlockFree`, and carries coverage
    /// stats (the explicit engines' stats stay internally consistent).
    #[test]
    fn cancelled_runs_are_honest_partials(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        for engine in ENGINES {
            for threads in THREADS {
                let budget = Budget::default();
                budget.cancel();
                let report = run_engine(
                    &net,
                    None,
                    "",
                    &spec(engine, threads),
                    &budget,
                    &CheckpointConfig::default(),
                    None,
                )
                .expect("cancellation is not an error");
                prop_assert_eq!(
                    report.exhausted,
                    Some(ExhaustionReason::Cancelled),
                    "{} x{}: wrong exhaustion reason", engine, threads
                );
                prop_assert_ne!(
                    report.verdict,
                    Verdict::DeadlockFree,
                    "{} x{}: a cancelled run claimed completeness", engine, threads
                );
                let coverage = report.coverage.as_ref().unwrap_or_else(|| {
                    panic!("{engine} x{threads}: partial run without coverage")
                });
                if matches!(engine, "full" | "po") {
                    prop_assert_eq!(
                        coverage.states_expanded + coverage.frontier_len,
                        coverage.states_stored,
                        "{} x{}: inconsistent coverage", engine, threads
                    );
                }
            }
        }
    }

    /// Cancellation outranks an expired deadline: a supervisor-tripped
    /// leg whose wall clock also ran out must still say `Cancelled`, so
    /// the per-leg table (and the serve drain) can tell "we stopped it"
    /// from "it timed out" deterministically.
    #[test]
    fn cancel_outranks_an_expired_deadline(seed in 0u64..100_000) {
        let Some(net) = random_safe_net(seed, &cfg()) else { return Ok(()); };
        for engine in ENGINES {
            let budget = Budget::default().with_timeout(Duration::ZERO);
            budget.cancel();
            let report = run_engine(
                &net,
                None,
                "",
                &spec(engine, 1),
                &budget,
                &CheckpointConfig::default(),
                None,
            )
            .expect("cancellation is not an error");
            prop_assert_eq!(
                report.exhausted,
                Some(ExhaustionReason::Cancelled),
                "{}: deadline masked the cancellation", engine
            );
        }
    }
}
