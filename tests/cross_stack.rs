//! Cross-crate integration: the textual format, the CLI-style pipeline
//! (parse → analyze → witness replay), and property tests that tie the
//! layers together on random nets.

use gpo_suite::prelude::*;
use proptest::prelude::*;

/// Serialize every benchmark to the `.net` format and re-verify the parse:
/// all analyses must be invariant under the round trip.
#[test]
fn text_round_trip_preserves_analyses() {
    for net in [
        models::nsdp(3),
        models::asat(2),
        models::overtake(2),
        models::readers_writers(3),
        models::figures::fig7(),
    ] {
        let reparsed = parse_net(&to_text(&net)).unwrap();
        let a = ReachabilityGraph::explore(&net).unwrap();
        let b = ReachabilityGraph::explore(&reparsed).unwrap();
        assert_eq!(a.state_count(), b.state_count(), "{}", net.name());
        assert_eq!(a.has_deadlock(), b.has_deadlock());
        let ga = analyze(&net).unwrap();
        let gb = analyze(&reparsed).unwrap();
        assert_eq!(ga.state_count, gb.state_count);
        assert_eq!(ga.deadlock_possible, gb.deadlock_possible);
    }
}

/// The witness pipeline: GPO reports a dead marking; replaying a shortest
/// path to it in the exhaustive graph confirms it end to end.
#[test]
fn witnesses_replay_end_to_end() {
    let net = models::nsdp(4);
    let report = analyze_with(
        &net,
        &GpoOptions {
            valid_set_limit: 1 << 24,
            max_witnesses: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.deadlock_possible);
    let rg = ReachabilityGraph::explore(&net).unwrap();
    for w in &report.deadlock_witnesses {
        let sid = rg.find(w).expect("witness reachable");
        let path = rg.path_to(sid).expect("path exists");
        let replayed = net
            .fire_sequence(net.initial_marking(), path)
            .unwrap()
            .expect("path replays");
        assert_eq!(&replayed, w);
        assert!(net.is_dead(&replayed));
    }
}

/// DOT output of nets and reachability graphs stays well-formed across the
/// benchmark suite (sanity for tooling users).
#[test]
fn dot_outputs_are_well_formed() {
    for net in [models::nsdp(2), models::figures::fig3()] {
        let d = petri::net_to_dot(&net);
        assert!(d.starts_with("digraph"));
        assert!(d.ends_with("}\n"));
        assert_eq!(d.matches("->").count(), net.arc_count());
        let rg = ReachabilityGraph::explore(&net).unwrap();
        let rd = petri::reachability_to_dot(&net, &rg);
        assert!(rd.starts_with("digraph"));
        assert!(rd.contains("penwidth=2"), "initial highlighted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full four-way engine agreement on random safe nets — the strongest
    /// integration property the repository offers.
    #[test]
    fn four_engines_agree_on_random_nets(seed in 0u64..100_000) {
        let cfg = models::random::RandomNetConfig {
            components: 3,
            places_per_component: 3,
            resources: 1,
            resource_use_prob: 0.4,
            choice_prob: 0.5,
            max_states: 3_000,
        };
        let Some(net) = models::random::random_safe_net(seed, &cfg) else { return Ok(()); };
        let full = ReachabilityGraph::explore(&net).expect("validated safe");
        let po = ReducedReachability::explore(&net).expect("validated safe");
        let bdd = SymbolicReachability::explore(&net);
        let Ok(gpo) = analyze_with(&net, &GpoOptions {
            valid_set_limit: 1 << 14,
            ..Default::default()
        }) else { return Ok(()); };
        prop_assert_eq!(po.has_deadlock(), full.has_deadlock(), "po\n{}", to_text(&net));
        prop_assert_eq!(bdd.has_deadlock(), full.has_deadlock(), "bdd\n{}", to_text(&net));
        prop_assert_eq!(gpo.deadlock_possible, full.has_deadlock(), "gpo\n{}", to_text(&net));
        prop_assert_eq!(bdd.state_count(), full.state_count() as f64, "bdd count");
        prop_assert!(po.state_count() <= full.state_count());
    }

    /// Round-tripping random nets through the text format preserves the
    /// exact structure.
    #[test]
    fn random_net_text_round_trip(seed in 0u64..100_000) {
        let cfg = models::random::RandomNetConfig::default();
        let net = models::random::random_net(seed, &cfg);
        let text = to_text(&net);
        let reparsed = parse_net(&text).expect("own output parses");
        prop_assert_eq!(to_text(&reparsed), text);
    }
}
