//! Determinism contract of the parallel GPO analysis (the concurrent-ZDD
//! refactor's acceptance criterion): for every bundled model, both family
//! representations, and every thread count, `analyze_with` reports the
//! same GPN state count, the same verdict, the same valid-set relation
//! size, the same witness markings, and the same work counters — and
//! every reported trace still replays to its witness.

use gpo_suite::prelude::*;
use models::random::{random_safe_net, RandomNetConfig};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Small instances of every bundled model with interesting structure.
fn model_zoo() -> Vec<(String, PetriNet)> {
    vec![
        ("fig2(4)".into(), models::figures::fig2(4)),
        ("fig7".into(), models::figures::fig7()),
        ("nsdp(4)".into(), models::nsdp(4)),
        ("readers_writers(4)".into(), models::readers_writers(4)),
        ("overtake(3)".into(), models::overtake(3)),
        ("asat(4)".into(), models::asat(4)),
        ("scheduler(4)".into(), models::scheduler(4)),
    ]
}

fn opts(representation: Representation, threads: usize) -> GpoOptions {
    GpoOptions {
        valid_set_limit: 1 << 22,
        max_witnesses: 2,
        representation,
        threads,
        ..Default::default()
    }
}

/// The observation compared across *representations*: order-independent
/// scalars only. Witness markings are representation-specific (each
/// family enumerates its blocked histories in its own canonical order)
/// but must be identical across thread counts within one representation,
/// which `observe_repr` adds on top.
type Scalars = (usize, bool, u64, usize, usize, usize, usize);

fn observe(report: &GpoReport) -> Scalars {
    (
        report.state_count,
        report.deadlock_possible,
        report.valid_set_count,
        report.multiple_firings,
        report.single_firings,
        report.enabling_computed,
        report.enabling_reused,
    )
}

/// The observation compared across thread counts within one
/// representation: the scalars plus the exact witness markings.
fn observe_repr(report: &GpoReport) -> (Scalars, Vec<Marking>) {
    (observe(report), report.deadlock_witnesses.clone())
}

fn replay(net: &PetriNet, report: &GpoReport, tag: &str) {
    assert_eq!(
        report.deadlock_traces.len(),
        report.deadlock_witnesses.len(),
        "{tag}: one trace per witness"
    );
    for (trace, witness) in report
        .deadlock_traces
        .iter()
        .zip(&report.deadlock_witnesses)
    {
        let reached = net
            .fire_sequence(net.initial_marking(), trace.iter().copied())
            .expect("safe")
            .unwrap_or_else(|| panic!("{tag}: trace not fireable"));
        assert_eq!(&reached, witness, "{tag}: trace misses its witness");
        assert!(net.is_dead(&reached), "{tag}: witness not dead");
    }
}

#[test]
fn analysis_identical_across_thread_counts_and_representations() {
    for (name, net) in model_zoo() {
        let mut scalar_baseline = None;
        for representation in [Representation::Explicit, Representation::Zdd] {
            let mut repr_baseline = None;
            for threads in THREADS {
                let tag = format!("{name} {representation:?} threads={threads}");
                let report = analyze_with(&net, &opts(representation, threads)).unwrap();
                replay(&net, &report, &tag);
                let obs = observe_repr(&report);
                match &scalar_baseline {
                    None => scalar_baseline = Some(obs.0),
                    Some(b) => assert_eq!(&obs.0, b, "{tag} diverges from serial explicit"),
                }
                match &repr_baseline {
                    None => repr_baseline = Some(obs),
                    Some(b) => assert_eq!(&obs, b, "{tag} witnesses diverge from serial"),
                }
            }
        }
    }
}

#[test]
fn zdd_counters_live_only_on_zdd_runs() {
    let net = models::nsdp(4);
    for threads in THREADS {
        let z = analyze_with(&net, &opts(Representation::Zdd, threads)).unwrap();
        assert!(z.zdd_nodes_allocated > 0, "threads={threads}");
        assert!(z.unique_hits > 0, "threads={threads}");
        let e = analyze_with(&net, &opts(Representation::Explicit, threads)).unwrap();
        assert_eq!(e.zdd_nodes_allocated, 0, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random safe nets: the parallel analysis agrees with the serial one
    /// under both representations.
    #[test]
    fn random_nets_agree_across_threads(seed in 0u64..100_000) {
        let cfg = RandomNetConfig {
            components: 3,
            places_per_component: 4,
            resources: 2,
            resource_use_prob: 0.4,
            choice_prob: 0.5,
            max_states: 4_000,
        };
        let Some(net) = random_safe_net(seed, &cfg) else { return Ok(()); };
        let mut scalar_baseline = None;
        for representation in [Representation::Explicit, Representation::Zdd] {
            let mut repr_baseline = None;
            for threads in [1usize, 2] {
                let mut o = opts(representation, threads);
                o.valid_set_limit = 1 << 16;
                let Ok(report) = analyze_with(&net, &o) else { return Ok(()); };
                let obs = observe_repr(&report);
                match &scalar_baseline {
                    None => scalar_baseline = Some(obs.0),
                    Some(b) => prop_assert_eq!(
                        &obs.0, b,
                        "{:?} threads={}\n{}", representation, threads, petri::to_text(&net)
                    ),
                }
                match &repr_baseline {
                    None => repr_baseline = Some(obs),
                    Some(b) => prop_assert_eq!(
                        &obs, b,
                        "witnesses: {:?} threads={}\n{}", representation, threads, petri::to_text(&net)
                    ),
                }
            }
        }
    }
}
