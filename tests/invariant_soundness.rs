//! Structural-invariant soundness on arbitrary nets: every vector the
//! Farkas enumeration returns must be an *exact* solution of its defining
//! linear system, re-checked here in 128-bit arithmetic so any silent
//! wrap inside the elimination (the bug class fixed in the overflow
//! sweep) shows up as a test failure rather than a bogus certificate.

use gpo_suite::prelude::*;
use models::random::{random_net, RandomNetConfig};
use petri::{
    incidence_matrix, place_invariants, place_invariants_capped, transition_invariants,
    transition_invariants_capped,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Exact check of `x · C = 0` (one dot product per transition column).
fn assert_place_invariant(c: &[Vec<i64>], x: &[i64], net_name: &str) {
    assert_eq!(x.len(), c.len());
    assert!(x.iter().all(|&w| w >= 0), "{net_name}: negative weight");
    assert!(x.iter().any(|&w| w > 0), "{net_name}: zero vector");
    let cols = c.first().map_or(0, Vec::len);
    for t in 0..cols {
        let dot: i128 = x
            .iter()
            .zip(c)
            .map(|(&w, row)| i128::from(w) * i128::from(row[t]))
            .sum();
        assert_eq!(dot, 0, "{net_name}: x·C ≠ 0 at column {t}");
    }
}

/// Exact check of `C · y = 0` (one dot product per place row).
fn assert_transition_invariant(c: &[Vec<i64>], y: &[i64], net_name: &str) {
    assert!(y.iter().all(|&w| w >= 0), "{net_name}: negative weight");
    assert!(y.iter().any(|&w| w > 0), "{net_name}: zero vector");
    for (p, row) in c.iter().enumerate() {
        assert_eq!(y.len(), row.len());
        let dot: i128 = row
            .iter()
            .zip(y)
            .map(|(&cv, &w)| i128::from(cv) * i128::from(w))
            .sum();
        assert_eq!(dot, 0, "{net_name}: C·y ≠ 0 at row {p}");
    }
}

fn check_net(net: &PetriNet) {
    let c = incidence_matrix(net);
    for x in place_invariants(net) {
        assert_place_invariant(&c, &x, net.name());
    }
    for y in transition_invariants(net) {
        assert_transition_invariant(&c, &y, net.name());
    }
    // capped enumeration returns a subset, but every row must still be
    // an exact invariant
    for x in place_invariants_capped(net, 4) {
        assert_place_invariant(&c, &x, net.name());
    }
    for y in transition_invariants_capped(net, 4) {
        assert_transition_invariant(&c, &y, net.name());
    }
}

#[test]
fn zoo_invariants_are_exact() {
    for net in [
        models::nsdp(5),
        models::asat(8),
        models::overtake(3),
        models::readers_writers(3),
        models::scheduler(4),
    ] {
        check_net(&net);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_net_invariants_are_exact(seed in 0u64..1u64 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomNetConfig {
            components: rng.gen_range(1..4),
            places_per_component: rng.gen_range(2..6),
            resources: rng.gen_range(0..3),
            ..RandomNetConfig::default()
        };
        check_net(&random_net(seed, &cfg));
    }
}
