//! End-to-end assertions for every figure of the paper, driven through the
//! public API of the umbrella crate.

// `SetFamily::new_context` returns `()` for the explicit representation;
// binding it keeps the call sites identical for both representations.
#![allow(clippy::let_unit_value)]

use gpo_core::{m_enabled, multiple_update, s_enabled, single_update, ExplicitFamily};
use gpo_suite::prelude::*;
use petri::BitSet;

fn bs(net: &PetriNet, names: &[&str]) -> BitSet {
    BitSet::from_iter_with_capacity(
        net.transition_count(),
        names.iter().map(|n| {
            net.transition_by_name(n)
                .expect("transition exists")
                .index()
        }),
    )
}

#[test]
fn fig1_eight_states_six_interleavings() {
    let net = models::figures::fig1();
    let rg = ReachabilityGraph::explore(&net).unwrap();
    assert_eq!(rg.state_count(), 8, "2^3 markings");
    assert_eq!(rg.count_maximal_paths(), Some(6), "3! interleavings");
    assert_eq!(rg.deadlocks().len(), 1);
}

#[test]
fn fig2_po_exponential_gpo_constant() {
    for n in 1..=8usize {
        let net = models::figures::fig2(n);
        let po = ReducedReachability::explore(&net).unwrap();
        assert_eq!(po.state_count(), (1 << (n + 1)) - 1, "2^(n+1)-1 at n={n}");
        let gpo = analyze(&net).unwrap();
        assert_eq!(gpo.state_count, 2, "the generalized analysis at n={n}");
        assert_eq!(gpo.deadlock_possible, po.has_deadlock());
    }
}

#[test]
fn fig3_colored_tokens_block_d() {
    let net = models::figures::fig3();
    let ctx = <ExplicitFamily as SetFamily>::new_context(net.transition_count());
    let s0 = GpnState::<ExplicitFamily>::initial(&net, &ctx, 1 << 10).unwrap();
    let t = |n: &str| net.transition_by_name(n).unwrap();
    let s1 = multiple_update(&net, &s0, &[t("A"), t("B")]);
    // p2 and p3 hold "red" (A) tokens, p4 holds the "green" (B) token
    let p = |n: &str| net.place_by_name(n).unwrap();
    assert_eq!(s1.place(p("p2")).sets(), s1.place(p("p3")).sets());
    assert!(
        s_enabled(&net, &s1, t("D")).is_empty(),
        "conflicting colors"
    );
    assert!(!s_enabled(&net, &s1, t("C")).is_empty());
    let s2 = single_update(&net, &s1, t("C"));
    assert!(!s2.place(p("p5")).is_empty(), "red token moved to p5");
    assert!(s2.place(p("p2")).is_empty());
    assert!(s2.place(p("p3")).is_empty());
}

#[test]
fn fig4_merge_place_holds_both_transition_sets() {
    let net = models::figures::fig4();
    let ctx = <ExplicitFamily as SetFamily>::new_context(net.transition_count());
    let s0 = GpnState::<ExplicitFamily>::initial(&net, &ctx, 1 << 10).unwrap();
    let t = |n: &str| net.transition_by_name(n).unwrap();
    let s1 = multiple_update(&net, &s0, &[t("A"), t("B")]);
    let p1 = net.place_by_name("p1").unwrap();
    assert_eq!(
        s1.place(p1).sets(),
        vec![bs(&net, &["A"]), bs(&net, &["B"])],
        "p1 gets filled with {{A}} and {{B}} (Figure 4)"
    );
}

#[test]
fn fig5_fig6_single_firing_and_mapping() {
    let net = models::figures::fig5();
    let u = net.transition_count();
    let t = |n: &str| net.transition_by_name(n).unwrap();
    let p = |n: &str| net.place_by_name(n).unwrap();
    let ctx = <ExplicitFamily as SetFamily>::new_context(u);
    // construct the paper's intermediate state directly
    let fam = |sets: &[&[&str]]| {
        let sets: Vec<BitSet> = sets.iter().map(|s| bs(&net, s)).collect();
        <ExplicitFamily as SetFamily>::from_sets(&ctx, u, &sets)
    };
    let empty = <ExplicitFamily as SetFamily>::empty(&ctx, u);
    let mut marking = vec![empty; net.place_count()];
    marking[p("p0").index()] = fam(&[&["A"], &["B"]]);
    marking[p("p1").index()] = fam(&[&["A"]]);
    marking[p("p2").index()] = fam(&[&["B"]]);
    let s = GpnState::from_parts(marking, fam(&[&["A"], &["B"]]));

    assert_eq!(s_enabled(&net, &s, t("A")).sets(), vec![bs(&net, &["A"])]);
    assert!(s_enabled(&net, &s, t("B")).is_empty());

    let mapped: Vec<String> = s
        .mapping(&net)
        .iter()
        .map(|m| net.display_marking(m))
        .collect();
    assert_eq!(mapped, vec!["{p0, p1}", "{p0, p2}"], "Figure 6(a)");

    let s1 = single_update(&net, &s, t("A"));
    let mapped1: Vec<String> = s1
        .mapping(&net)
        .iter()
        .map(|m| net.display_marking(m))
        .collect();
    assert_eq!(mapped1, vec!["{p0, p2}", "{p3}"], "Figure 6(b)");
}

#[test]
fn fig7_full_replay() {
    let net = models::figures::fig7();
    let t = |n: &str| net.transition_by_name(n).unwrap();
    let ctx = <ExplicitFamily as SetFamily>::new_context(net.transition_count());
    let s0 = GpnState::<ExplicitFamily>::initial(&net, &ctx, 1 << 10).unwrap();

    assert_eq!(
        m_enabled(&net, &s0, t("A")).sets(),
        vec![bs(&net, &["A", "C"]), bs(&net, &["A", "D"])]
    );
    let s1 = multiple_update(&net, &s0, &[t("A"), t("B")]);
    assert_eq!(s1.valid(), s0.valid(), "r1 = r0");
    let s2 = multiple_update(&net, &s1, &[t("C"), t("D")]);
    assert_eq!(
        s2.valid().sets(),
        vec![bs(&net, &["A", "C"]), bs(&net, &["B", "D"])],
        "extended conflicts {{A,D}} and {{B,C}} pruned from r2"
    );
    let mapped: Vec<String> = s2
        .mapping(&net)
        .iter()
        .map(|m| net.display_marking(m))
        .collect();
    assert_eq!(mapped, vec!["{p5}"], "only p5 marked in every scenario");
}

#[test]
fn fig7_whole_analysis_is_three_states() {
    // s0 -> (fire {A,B}) -> s1 -> (fire {C,D}) -> s2 (terminal)
    let report = analyze(&models::figures::fig7()).unwrap();
    assert_eq!(report.state_count, 3);
    assert_eq!(report.multiple_firings, 2);
    assert!(report.deadlock_possible, "the final marking is terminal");
}
