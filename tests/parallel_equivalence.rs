//! Determinism contract of the parallel frontier engine (README §parallel
//! exploration): for every model and every thread count, the reachable
//! state *set*, the deadlock marking *set*, and the edge *count* are
//! identical — only state ids may permute.

use std::collections::BTreeSet;

use gpo_suite::prelude::*;
use petri::ExploreOptions;

const THREADS: [usize; 3] = [1, 2, 8];

/// Small instances of every model in `crates/models`, plus the paper's
/// figure nets that have interesting structure.
fn model_zoo() -> Vec<(String, PetriNet)> {
    vec![
        ("fig2(4)".into(), models::figures::fig2(4)),
        ("fig7".into(), models::figures::fig7()),
        ("nsdp(4)".into(), models::nsdp(4)),
        ("readers_writers(4)".into(), models::readers_writers(4)),
        ("overtake(3)".into(), models::overtake(3)),
        ("asat(4)".into(), models::asat(4)),
        ("scheduler(4)".into(), models::scheduler(4)),
    ]
}

fn marking_set<'a>(ms: impl Iterator<Item = &'a Marking>) -> BTreeSet<Marking> {
    ms.cloned().collect()
}

#[test]
fn full_graph_identical_across_thread_counts() {
    for (name, net) in model_zoo() {
        let mut baseline: Option<(BTreeSet<Marking>, BTreeSet<Marking>, usize)> = None;
        for threads in THREADS {
            let rg = ReachabilityGraph::explore_with(
                &net,
                &ExploreOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let states = marking_set(rg.states().map(|s| rg.marking(s)));
            let deadlocks = marking_set(rg.deadlocks().iter().map(|&s| rg.marking(s)));
            assert_eq!(states.len(), rg.state_count(), "{name} threads={threads}");
            let obs = (states, deadlocks, rg.edge_count());
            match &baseline {
                None => baseline = Some(obs),
                Some(b) => {
                    assert_eq!(b.0, obs.0, "{name}: state set differs at threads={threads}");
                    assert_eq!(
                        b.1, obs.1,
                        "{name}: deadlock set differs at threads={threads}"
                    );
                    assert_eq!(
                        b.2, obs.2,
                        "{name}: edge count differs at threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn reduced_graph_identical_across_thread_counts() {
    for (name, net) in model_zoo() {
        for strategy in [
            SeedStrategy::FirstEnabled,
            SeedStrategy::BestOfEnabled,
            SeedStrategy::ConflictCluster,
        ] {
            let mut baseline: Option<(BTreeSet<Marking>, BTreeSet<Marking>, usize)> = None;
            for threads in THREADS {
                let red = ReducedReachability::explore_with(
                    &net,
                    &ReducedOptions {
                        strategy,
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap();
                let states = marking_set(red.markings());
                let deadlocks = marking_set(red.deadlock_markings());
                let obs = (states, deadlocks, red.edge_count());
                match &baseline {
                    None => baseline = Some(obs),
                    Some(b) => {
                        assert_eq!(
                            b.0, obs.0,
                            "{name}/{strategy:?}: state set differs at threads={threads}"
                        );
                        assert_eq!(
                            b.1, obs.1,
                            "{name}/{strategy:?}: deadlock set differs at threads={threads}"
                        );
                        assert_eq!(
                            b.2, obs.2,
                            "{name}/{strategy:?}: edge count differs at threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_agrees_with_full_verification_report() {
    // the downstream consumers (verify, gpo differential tests) only look
    // at counts and deadlock flags; cross-check against the serial engine
    for (name, net) in model_zoo() {
        let serial = ReachabilityGraph::explore_with(
            &net,
            &ExploreOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = ReachabilityGraph::explore_with(
            &net,
            &ExploreOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.state_count(), parallel.state_count(), "{name}");
        assert_eq!(serial.has_deadlock(), parallel.has_deadlock(), "{name}");
        assert_eq!(
            serial.deadlocks().len(),
            parallel.deadlocks().len(),
            "{name}"
        );
        assert_eq!(serial.edge_count(), parallel.edge_count(), "{name}");
        assert_eq!(parallel.threads_used(), 4);
    }
}

#[test]
fn state_limit_reported_for_any_thread_count() {
    let net = models::nsdp(5);
    for threads in THREADS {
        let err = ReachabilityGraph::explore_with(
            &net,
            &ExploreOptions {
                max_states: 10,
                threads,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, petri::NetError::StateLimit(10)),
            "threads={threads}: {err:?}"
        );
    }
}

/// One seed state, a deep chain whose every link also fans out wide: the
/// schedule is dominated by work stealing (one worker advances the chain
/// while thieves nibble the dead-end leaves), which is exactly the shape
/// the per-worker deques were built for.
fn steal_heavy_comb(depth: usize, width: usize) -> PetriNet {
    let mut b = NetBuilder::new("comb");
    let mut cur = b.place_marked("c0");
    for i in 0..depth {
        let next = b.place(format!("c{}", i + 1));
        b.transition(format!("t{i}"), [cur], [next]);
        for j in 0..width {
            let d = b.place(format!("d{i}_{j}"));
            b.transition(format!("u{i}_{j}"), [cur], [d]);
        }
        cur = next;
    }
    b.build().unwrap()
}

#[test]
fn steal_heavy_schedule_identical_across_thread_counts() {
    let net = steal_heavy_comb(40, 8);
    let gpo_net = steal_heavy_comb(6, 2);
    let expected_states = 41 + 40 * 8;
    let mut full_base: Option<(BTreeSet<Marking>, BTreeSet<Marking>, usize)> = None;
    let mut gpo_base: Option<(usize, bool)> = None;
    for threads in THREADS {
        let rg = ReachabilityGraph::explore_with(
            &net,
            &ExploreOptions {
                threads,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rg.state_count(), expected_states, "threads={threads}");
        let obs = (
            marking_set(rg.states().map(|s| rg.marking(s))),
            marking_set(rg.deadlocks().iter().map(|&s| rg.marking(s))),
            rg.edge_count(),
        );
        match &full_base {
            None => full_base = Some(obs),
            Some(b) => assert_eq!(b, &obs, "full engine diverges at threads={threads}"),
        }

        let red = ReducedReachability::explore_with(
            &net,
            &ReducedOptions {
                threads,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            red.has_deadlock(),
            rg.has_deadlock(),
            "reduced engine verdict diverges at threads={threads}"
        );

        // the GPN valid-set relation blows up on the 40×8 comb, so the
        // GPO leg runs a smaller instance of the same steal-heavy shape
        let gpo = analyze_with(
            &gpo_net,
            &GpoOptions {
                threads,
                ..Default::default()
            },
        )
        .unwrap();
        let obs = (gpo.state_count, gpo.deadlock_possible);
        match &gpo_base {
            None => gpo_base = Some(obs),
            Some(b) => assert_eq!(b, &obs, "gpo engine diverges at threads={threads}"),
        }
    }
}
