//! The pdr engine's reason for existing: on state spaces too large for
//! the enumerative engines' budget, an inductive proof still settles the
//! property — soundly, with a certificate this test re-validates through
//! an independent code path and against brute-force enumeration.

use gpo_suite::prelude::*;
use julie::engine::{run_engine, RunSpec};
use petri::{CheckpointConfig, Property};

fn spec(engine: &str, property: &Property) -> RunSpec {
    RunSpec {
        engine: engine.to_string(),
        zdd: false,
        witnesses: 1,
        threads: 1,
        property: property.clone(),
    }
}

/// Mutual exclusion of two adjacent dining philosophers: holds (they
/// share a fork), and the fork's P-invariant makes it inductively
/// provable without unrolling the ~10^5-state space.
const MUTEX: &str = "AG !(m(eat0) >= 1 & m(eat1) >= 1)";

#[test]
fn pdr_answers_where_enumeration_exhausts() {
    let net = models::nsdp(8);
    let property = Property::parse(MUTEX).unwrap();
    // a CI-sized budget: far too small for nsdp(8)'s reachable space (and
    // too few events for a complete prefix). The wall cap is a backstop
    // so a slow machine degrades on time instead of stalling; either axis
    // leaves the verdict unsound, which is all this test asserts.
    let budget = || {
        Budget::default()
            .cap_states(50)
            .with_timeout(std::time::Duration::from_secs(30))
    };

    for engine in ["full", "po", "gpo", "bdd", "unfold"] {
        let report = run_engine(
            &net,
            None,
            "",
            &spec(engine, &property),
            &budget(),
            &CheckpointConfig::default(),
            None,
        )
        .unwrap_or_else(|e| panic!("{engine}: {e}"));
        assert!(
            !report.verdict.is_sound(),
            "{engine} cannot soundly settle nsdp(8) within 50 states"
        );
    }

    let report = run_engine(
        &net,
        None,
        "",
        &spec("pdr", &property),
        &budget(),
        &CheckpointConfig::default(),
        None,
    )
    .unwrap();
    assert!(
        report.verdict.is_sound(),
        "pdr proves under the same budget"
    );
    assert_eq!(report.verdict, Verdict::DeadlockFree, "AG holds");
    assert!(
        !report.certificate.is_empty(),
        "the proof carries a certificate"
    );
}

#[test]
fn the_certificate_is_independently_revalidated() {
    // small enough to enumerate, so the certificate can be checked both
    // by the independent validator and against every reachable marking
    let net = models::nsdp(6);
    let property = Property::parse(MUTEX).unwrap();
    let compiled = property.compile(&net).unwrap();

    let result = pdr::check_bounded(&net, &compiled, &Budget::default())
        .unwrap()
        .into_value();
    assert_eq!(result.reachable, Some(false));
    let cert = result.certificate.expect("certificate");

    // 1. the independent DPLL/incidence validator accepts it
    pdr::validate::validate_certificate(&net, &compiled, &cert).unwrap();

    // 2. brute force: every reachable marking satisfies every clause and
    //    none is a goal marking
    let rg = ReachabilityGraph::explore(&net).unwrap();
    assert!(rg.state_count() > 1000, "the instance is non-trivial");
    for s in rg.states() {
        let m = rg.marking(s);
        for (i, clause) in cert.clauses.iter().enumerate() {
            assert!(
                clause.iter().any(|&(p, pos)| m.is_marked(p) == pos),
                "clause {i} fails at reachable marking {}",
                net.display_marking(m)
            );
        }
        assert!(
            !compiled.goal(&net, m),
            "goal marking reachable at {}",
            net.display_marking(m)
        );
    }
}
