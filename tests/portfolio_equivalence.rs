//! Portfolio correctness (README §`--engine=auto`): the race must be
//! verdict-transparent. Whatever leg wins, the auto verdict equals every
//! solo engine's sound verdict on the same question; an injected leg
//! panic never changes the answer; a fabricated cross-engine
//! disagreement fails closed naming both engines; and when every leg
//! exhausts its budget the portfolio degrades to an inconclusive report
//! instead of guessing.

use std::time::Duration;

use gpo_suite::prelude::*;
use julie::engine::{run_engine, RunSpec};
use julie::portfolio::{run_portfolio, PortfolioOptions, RACEABLE};
use petri::{CheckpointConfig, Property};

fn spec(engine: &str, property: &Property) -> RunSpec {
    RunSpec {
        engine: engine.to_string(),
        zdd: false,
        witnesses: 1,
        threads: 1,
        property: property.clone(),
    }
}

/// Default options with no stage delay, so tests never wait on the
/// escalation timer.
fn fast_opts() -> PortfolioOptions {
    PortfolioOptions {
        stage_delay: Duration::ZERO,
        ..PortfolioOptions::default()
    }
}

/// The test matrix: small nets from the benchmark zoo crossed with the
/// default property, its negated spelling, and a fireability query on
/// each net's first transition.
fn matrix() -> Vec<(PetriNet, Property)> {
    let mut cells = Vec::new();
    for net in [
        models::nsdp(3),
        models::overtake(2),
        models::readers_writers(2),
    ] {
        let t0 = net
            .transition_name(net.transitions().next().expect("zoo nets have transitions"))
            .to_string();
        for prop in [
            Property::deadlock(),
            Property::parse("AG !deadlock").unwrap(),
            Property::parse(&format!("EF fireable({t0})")).unwrap(),
        ] {
            cells.push((net.clone(), prop));
        }
    }
    cells
}

/// With an unlimited budget every solo engine settles the question, so
/// the portfolio's answer must equal each of them — whichever leg won.
#[test]
fn auto_matches_every_solo_sound_verdict() {
    for (net, prop) in matrix() {
        let budget = Budget::default();
        let ckpt = CheckpointConfig::default();
        let outcome = run_portfolio(
            &net,
            None,
            "",
            &spec("auto", &prop),
            &budget,
            &ckpt,
            None,
            &fast_opts(),
        )
        .unwrap_or_else(|e| panic!("{} / {prop}: portfolio failed: {e}", net.name()));
        assert!(
            outcome.report.verdict.is_sound(),
            "{} / {prop}: unlimited budget must settle the question",
            net.name()
        );
        assert_eq!(
            outcome.legs.iter().filter(|l| l.outcome == "won").count(),
            1,
            "{} / {prop}: exactly one winner\n{:?}",
            net.name(),
            outcome.legs
        );
        for engine in RACEABLE {
            let solo = run_engine(&net, None, "", &spec(engine, &prop), &budget, &ckpt, None)
                .unwrap_or_else(|e| panic!("{} / {prop}: solo {engine} failed: {e}", net.name()));
            assert!(solo.verdict.is_sound());
            assert_eq!(
                outcome.report.verdict,
                solo.verdict,
                "{} / {prop}: auto (won by {}) disagrees with solo {engine}",
                net.name(),
                outcome.report.engine
            );
        }
    }
}

/// Retiring any single leg with an injected panic never changes the
/// race's verdict — the supervisor isolates the crash and another leg
/// answers.
#[test]
fn injected_panic_never_changes_the_verdict() {
    let net = models::nsdp(3);
    let prop = Property::deadlock();
    let budget = Budget::default();
    let ckpt = CheckpointConfig::default();
    let reference = run_engine(&net, None, "", &spec("full", &prop), &budget, &ckpt, None)
        .unwrap()
        .verdict;
    for victim in RACEABLE {
        let opts = PortfolioOptions {
            inject_panic: Some(victim.to_string()),
            ..fast_opts()
        };
        let outcome = run_portfolio(
            &net,
            None,
            "",
            &spec("auto", &prop),
            &budget,
            &ckpt,
            None,
            &opts,
        )
        .unwrap_or_else(|e| panic!("panic in `{victim}` sank the race: {e}"));
        assert_eq!(
            outcome.report.verdict, reference,
            "panic in `{victim}` changed the verdict"
        );
        assert_ne!(outcome.report.engine, victim, "the panicked leg cannot win");
        let row = outcome
            .legs
            .iter()
            .find(|l| l.engine == victim)
            .expect("victim has a table row");
        assert_eq!(row.outcome, "panicked", "{row:?}");
        // the retry only fires while the race is still open, so a fast
        // winner may beat it — but a third attempt never happens
        assert!((1..=2).contains(&row.attempts), "retry is bounded: {row:?}");
    }
}

/// A fabricated disagreement (one leg's sound verdict flipped) must fail
/// closed with a diagnostic naming the flipped engine — never silently
/// pick a side.
#[test]
fn fabricated_disagreement_fails_closed() {
    let net = models::nsdp(3);
    let opts = PortfolioOptions {
        inject_flip: Some("po".to_string()),
        ..fast_opts()
    };
    let err = run_portfolio(
        &net,
        None,
        "",
        &spec("auto", &Property::deadlock()),
        &Budget::default(),
        &CheckpointConfig::default(),
        None,
        &opts,
    )
    .expect_err("a flipped verdict must not resolve the race");
    assert!(err.contains("disagreement"), "{err}");
    assert!(err.contains("`po`"), "{err}");
}

/// When every leg exhausts its budget, the portfolio degrades to the
/// best partial result — reported honestly as inconclusive.
#[test]
fn exhausted_portfolio_degrades_to_best_partial() {
    let net = models::nsdp(6);
    let opts = PortfolioOptions {
        // explicit engines only: both provably exhaust a 10-state budget
        stages: vec![vec!["po".into()], vec!["full".into()]],
        ..fast_opts()
    };
    let outcome = run_portfolio(
        &net,
        None,
        "",
        &spec("auto", &Property::parse("AG !deadlock").unwrap()),
        &Budget::default().cap_states(10),
        &CheckpointConfig::default(),
        None,
        &opts,
    )
    .expect("exhaustion degrades, it does not error");
    assert!(
        !outcome.report.verdict.is_sound(),
        "10 states cannot settle nsdp(6): {:?}",
        outcome.report.verdict
    );
    assert!(outcome.report.exhausted.is_some());
    for row in &outcome.legs {
        assert_eq!(row.outcome, "partial", "{row:?}");
    }
}
