//! Equivalence contract of the structural reduction pre-pass: for every
//! bundled model and every engine, verifying the reduced net yields the
//! same deadlock verdict as verifying the original, every witness trace
//! found on the reduced net lifts to a replayable trace of the original,
//! and the reduction is a fixpoint. A strict-decrease check pins the
//! point of the pre-pass: on the reducible zoo nets every engine stores
//! fewer states after reduction.

use gpo_suite::prelude::*;
use models::random::{random_safe_net, RandomNetConfig};
use petri::ExploreOptions;
use proptest::prelude::*;
use unfolding::UnfoldOptions;

const THREADS: [usize; 2] = [1, 8];
const ENGINES: [&str; 5] = ["full", "po", "gpo", "bdd", "unfold"];

/// Small instances of every bundled model with interesting structure.
fn model_zoo() -> Vec<(String, PetriNet)> {
    vec![
        ("fig2(4)".into(), models::figures::fig2(4)),
        ("fig7".into(), models::figures::fig7()),
        ("nsdp(4)".into(), models::nsdp(4)),
        ("readers_writers(4)".into(), models::readers_writers(4)),
        ("overtake(3)".into(), models::overtake(3)),
        ("asat(4)".into(), models::asat(4)),
        ("scheduler(4)".into(), models::scheduler(4)),
    ]
}

/// What one engine run observes: the deadlock verdict, a size measure of
/// what it stored (states, prefix events, …), and a witness trace when
/// the engine produces one.
struct EngineRun {
    deadlock: bool,
    stored: f64,
    trace: Option<Vec<TransitionId>>,
}

fn run_engine(engine: &str, net: &PetriNet, threads: usize) -> EngineRun {
    match engine {
        "full" => {
            let opts = ExploreOptions {
                max_states: usize::MAX,
                record_edges: true,
                threads,
            };
            let rg = ReachabilityGraph::explore_with(net, &opts).unwrap();
            EngineRun {
                deadlock: rg.has_deadlock(),
                stored: rg.state_count() as f64,
                trace: rg.deadlocks().first().and_then(|&d| rg.path_to(d)),
            }
        }
        "po" => {
            let opts = ReducedOptions {
                strategy: SeedStrategy::BestOfEnabled,
                max_states: usize::MAX,
                threads,
                ..Default::default()
            };
            let red = ReducedReachability::explore_with(net, &opts).unwrap();
            EngineRun {
                deadlock: red.has_deadlock(),
                stored: red.state_count() as f64,
                trace: None, // the po engine stores markings only
            }
        }
        "gpo" => {
            let opts = GpoOptions {
                valid_set_limit: 1 << 22,
                max_witnesses: 1,
                threads,
                ..Default::default()
            };
            let report = analyze_with(net, &opts).unwrap();
            EngineRun {
                deadlock: report.deadlock_possible,
                stored: report.state_count as f64,
                trace: report.deadlock_traces.first().cloned(),
            }
        }
        "bdd" => {
            let sym = SymbolicReachability::explore_with(net, &SymbolicOptions::default());
            EngineRun {
                deadlock: sym.has_deadlock(),
                stored: sym.state_count(),
                trace: None,
            }
        }
        "unfold" => {
            let unf = Unfolding::build_with(net, &UnfoldOptions::default()).unwrap();
            EngineRun {
                deadlock: unf.has_deadlock(net),
                stored: unf.prefix().event_count() as f64,
                trace: None,
            }
        }
        other => panic!("unknown engine {other}"),
    }
}

/// Lifts a reduced-net trace and checks it reaches a dead marking of the
/// original net.
fn assert_trace_lifts(
    original: &PetriNet,
    reduction: &Reduction,
    trace: &[TransitionId],
    tag: &str,
) {
    let lifted = reduction
        .map
        .lift_trace(trace)
        .expect("safe")
        .unwrap_or_else(|| panic!("{tag}: reduced witness does not lift"));
    let reached = original
        .fire_sequence(original.initial_marking(), lifted.iter().copied())
        .expect("safe")
        .unwrap_or_else(|| panic!("{tag}: lifted witness not fireable on the original"));
    assert!(
        original.is_dead(&reached),
        "{tag}: lifted witness does not reach a dead marking"
    );
}

#[test]
fn zoo_verdicts_survive_reduction_for_every_engine_and_thread_count() {
    for (name, net) in model_zoo() {
        let reduction = reduce(&net, &ReduceOptions::default()).unwrap();

        // the pass is a fixpoint: reducing the reduced net is a noop
        let again = reduce(&reduction.net, &ReduceOptions::default()).unwrap();
        assert!(again.report.is_noop(), "{name}: reduction not a fixpoint");

        for engine in ENGINES {
            for &threads in &THREADS {
                let tag = format!("{name} {engine} threads={threads}");
                let plain = run_engine(engine, &net, threads);
                let reduced = run_engine(engine, &reduction.net, threads);
                assert_eq!(
                    plain.deadlock, reduced.deadlock,
                    "{tag}: verdict changed under reduction"
                );
                if let Some(trace) = &reduced.trace {
                    assert_trace_lifts(&net, &reduction, trace, &tag);
                }
                // threads only shape full/po/gpo; one pass suffices for the rest
                if matches!(engine, "bdd" | "unfold") {
                    break;
                }
            }
        }
    }
}

#[test]
fn reduction_strictly_shrinks_stored_states_on_reducible_zoo_nets() {
    // each of these nets loses places *and* transitions under the default
    // rules, and every engine demonstrably stores less afterwards
    let reducible: Vec<(String, PetriNet)> = vec![
        ("nsdp(4)".into(), models::nsdp(4)),
        ("overtake(3)".into(), models::overtake(3)),
        ("asat(4)".into(), models::asat(4)),
        ("scheduler(4)".into(), models::scheduler(4)),
    ];
    for (name, net) in reducible {
        let reduction = reduce(&net, &ReduceOptions::default()).unwrap();
        assert!(
            !reduction.report.is_noop(),
            "{name}: expected the net to reduce"
        );
        for engine in ENGINES {
            let tag = format!("{name} {engine}");
            let plain = run_engine(engine, &net, 1);
            let reduced = run_engine(engine, &reduction.net, 1);
            assert!(
                reduced.stored < plain.stored,
                "{tag}: stored states did not decrease ({} -> {})",
                plain.stored,
                reduced.stored
            );
            assert_eq!(plain.deadlock, reduced.deadlock, "{tag}: verdict changed");
        }
    }
}

#[test]
fn verify_bounded_reduced_matches_verify_bounded_on_the_zoo() {
    for (name, net) in model_zoo() {
        let budget = Budget::default().cap_states(usize::MAX);
        let opts = ExploreOptions {
            max_states: usize::MAX,
            record_edges: true,
            threads: 1,
        };
        let plain = verify_bounded(&net, &opts, &budget).unwrap();
        let reduced =
            verify_bounded_reduced(&net, &opts, &budget, &ReduceOptions::default()).unwrap();
        assert_eq!(
            plain.report.has_deadlock, reduced.report.has_deadlock,
            "{name}: verdict changed"
        );
        assert!(plain.reduction.is_none(), "{name}: unreduced run has stats");
        let stats = reduced.reduction.as_ref().expect("reduction stats");
        assert_eq!(stats.places_before, net.place_count(), "{name}");
        if let Some(w) = &reduced.report.deadlock_witness {
            // the lifted witness replays on the ORIGINAL net into the
            // reported dead marking
            let reached = net
                .fire_sequence(net.initial_marking(), w.iter().copied())
                .expect("safe")
                .unwrap_or_else(|| panic!("{name}: lifted witness not fireable"));
            assert!(net.is_dead(&reached), "{name}: witness marking not dead");
            assert_eq!(
                Some(&reached),
                reduced.report.deadlock_marking.as_ref(),
                "{name}: reported marking mismatches its witness"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random safe nets: reduction preserves the exhaustive deadlock
    /// verdict, lifts witnesses to replayable original traces, and is
    /// idempotent.
    #[test]
    fn random_nets_verdicts_survive_reduction(seed in 0u64..100_000) {
        let cfg = RandomNetConfig {
            components: 3,
            places_per_component: 4,
            resources: 2,
            resource_use_prob: 0.4,
            choice_prob: 0.5,
            max_states: 4_000,
        };
        let Some(net) = random_safe_net(seed, &cfg) else { return Ok(()); };
        let reduction = reduce(&net, &ReduceOptions::default()).unwrap();
        let again = reduce(&reduction.net, &ReduceOptions::default()).unwrap();
        prop_assert!(again.report.is_noop(), "not a fixpoint\n{}", to_text(&net));

        let plain = ReachabilityGraph::explore(&net).unwrap();
        let reduced = ReachabilityGraph::explore(&reduction.net).unwrap();
        prop_assert_eq!(
            plain.has_deadlock(),
            reduced.has_deadlock(),
            "verdict changed\n{}",
            to_text(&net)
        );
        if let Some(&d) = reduced.deadlocks().first() {
            let trace = reduced.path_to(d).expect("edges recorded");
            let lifted = reduction.map.lift_trace(&trace).expect("safe");
            prop_assert!(lifted.is_some(), "witness does not lift\n{}", to_text(&net));
            let reached = net
                .fire_sequence(net.initial_marking(), lifted.unwrap().iter().copied())
                .expect("safe")
                .expect("lifted witness fireable");
            prop_assert!(net.is_dead(&reached), "not dead\n{}", to_text(&net));
        }
    }
}
