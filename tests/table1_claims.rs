//! The Table 1 claims at test-sized instances: exact counts where the
//! paper's numbers are reproduced exactly, shape assertions elsewhere.

use gpo_suite::prelude::*;

/// NSDP full state counts are the Lucas numbers of Table 1 — exact.
#[test]
fn nsdp_full_counts_exact() {
    let expected = [(2usize, 18usize), (4, 322), (6, 5778)];
    for (n, states) in expected {
        let rg = ReachabilityGraph::explore(&models::nsdp(n)).unwrap();
        assert_eq!(rg.state_count(), states, "NSDP({n})");
        assert!(rg.has_deadlock());
    }
}

/// NSDP(2) partial-order reduction: 12 states — exactly the paper's value.
#[test]
fn nsdp2_po_count_exact() {
    let red = ReducedReachability::explore(&models::nsdp(2)).unwrap();
    assert_eq!(red.state_count(), 12);
    assert!(red.has_deadlock());
}

/// NSDP GPO: 3 states at every size, deadlock found.
#[test]
fn nsdp_gpo_three_states() {
    for n in [2usize, 3, 4, 5, 6] {
        let report = analyze_with(
            &models::nsdp(n),
            &GpoOptions {
                valid_set_limit: 1 << 24,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.state_count, 3, "NSDP({n})");
        assert!(report.deadlock_possible);
    }
}

/// RW: GPO needs exactly 2 states and reports deadlock freedom; the full
/// graph grows exponentially (2^n + n reachable markings).
#[test]
fn rw_gpo_two_states() {
    for n in [3usize, 6, 9] {
        let net = models::readers_writers(n);
        let full = ReachabilityGraph::explore(&net).unwrap();
        assert_eq!(full.state_count(), (1 << n) + n, "RW({n}) full");
        let report = analyze(&net).unwrap();
        assert_eq!(report.state_count, 2, "RW({n}) GPO");
        assert!(!report.deadlock_possible);
    }
}

/// OVER: full graph is 8^n like the paper's ~8.05^n; GPO constant; PO in
/// between and growing.
#[test]
fn over_shape() {
    let mut last_po = 0;
    for n in 1..=4usize {
        let net = models::overtake(n);
        let full = ReachabilityGraph::explore(&net).unwrap();
        assert_eq!(full.state_count(), 8usize.pow(n as u32));
        let po = ReducedReachability::explore(&net).unwrap();
        assert!(po.state_count() > last_po, "PO keeps growing");
        assert!(po.state_count() < full.state_count() || n == 1);
        last_po = po.state_count();
        let gpo = analyze(&net).unwrap();
        assert!(
            gpo.state_count <= 5,
            "GPO near-constant, got {}",
            gpo.state_count
        );
    }
}

/// ASAT: GPO grows by a few states per tree level while the full graph
/// roughly squares per doubling.
#[test]
fn asat_shape() {
    let net2 = models::asat(2);
    let net4 = models::asat(4);
    let full2 = ReachabilityGraph::explore(&net2).unwrap().state_count();
    let full4 = ReachabilityGraph::explore(&net4).unwrap().state_count();
    assert!(
        full4 > full2 * full2 / 4,
        "full roughly squares: {full2} -> {full4}"
    );
    let gpo2 = analyze(&net2).unwrap().state_count;
    let gpo4 = analyze(&net4).unwrap().state_count;
    assert!(gpo2 <= 10 && gpo4 <= 16, "GPO stays tiny: {gpo2}, {gpo4}");
    assert!(gpo4 - gpo2 <= 6, "GPO grows by a few states per level");
}

/// The peak-BDD column: the symbolic engine agrees with the explicit count
/// on every benchmark family at small sizes.
#[test]
fn bdd_counts_agree_everywhere() {
    for net in [
        models::nsdp(2),
        models::nsdp(4),
        models::asat(2),
        models::overtake(2),
        models::readers_writers(4),
    ] {
        let full = ReachabilityGraph::explore(&net).unwrap();
        let sym = SymbolicReachability::explore(&net);
        assert_eq!(
            sym.state_count(),
            full.state_count() as f64,
            "{}",
            net.name()
        );
        assert_eq!(sym.has_deadlock(), full.has_deadlock(), "{}", net.name());
        assert!(sym.peak_live_nodes() > 0);
    }
}

/// Every engine returns the same deadlock verdict on every benchmark —
/// the correctness backbone of the whole comparison.
#[test]
fn all_engines_agree_on_all_benchmarks() {
    let nets = [
        models::nsdp(3),
        models::asat(4),
        models::overtake(3),
        models::readers_writers(5),
        models::figures::fig2(5),
        models::figures::fig7(),
    ];
    for net in nets {
        let full = ReachabilityGraph::explore(&net).unwrap().has_deadlock();
        let po = ReducedReachability::explore(&net).unwrap().has_deadlock();
        let bdd = SymbolicReachability::explore(&net).has_deadlock();
        let gpo = analyze(&net).unwrap().deadlock_possible;
        assert_eq!(full, po, "{}: full vs po", net.name());
        assert_eq!(full, bdd, "{}: full vs bdd", net.name());
        assert_eq!(full, gpo, "{}: full vs gpo", net.name());
    }
}
