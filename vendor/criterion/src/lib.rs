//! Offline std-only stand-in for the criterion API subset used by this
//! workspace.
//!
//! The build environment has no registry access, so — like the sibling
//! `rand` and `proptest` stand-ins under `vendor/` — this crate implements
//! just enough of criterion's surface for the `gpo-bench` benchmark
//! binaries to compile and produce useful wall-clock numbers: warmup plus
//! `sample_size` timed samples per benchmark, with mean / min / max
//! reported on stdout in a criterion-like format.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
///
/// Uses the `read_volatile` trick (criterion's own pre-`std::hint` fallback)
/// so benchmark bodies are not optimized away.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Identifier of one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once for warmup, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup, also primes caches/allocator
        self.recorded.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.recorded.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (criterion's default
    /// is 100; the stand-in default is 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `routine` against one `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::with_capacity(self.sample_size),
        };
        routine(&mut b, input);
        self.report(&id, &b.recorded);
        self
    }

    /// Times `routine` with no input.
    pub fn bench_function<R>(&mut self, id: BenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::with_capacity(self.sample_size),
        };
        routine(&mut b);
        self.report(&id, &b.recorded);
        self
    }

    /// Ends the group (accounting only; required by the criterion API).
    pub fn finish(self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        self.criterion.benchmarks_run += 1;
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{}/{id}: time [{} {} {}] ({} samples)",
            self.name,
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            samples.len(),
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Prints the run summary; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("completed {} benchmarks", self.benchmarks_run);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundles benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running each group, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert_eq!(calls, 4, "1 warmup + 3 samples");
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("full", 6).to_string(), "full/6");
        assert_eq!(BenchmarkId::from_parameter(6).to_string(), "6");
    }

    #[test]
    fn macros_compose() {
        fn bench_a(c: &mut Criterion) {
            let mut g = c.benchmark_group("a");
            g.sample_size(1);
            g.bench_function(BenchmarkId::from_parameter(0), |b| b.iter(|| 1 + 1));
            g.finish();
        }
        criterion_group!(benches, bench_a);
        let mut c = Criterion::default();
        benches(&mut c);
        assert_eq!(c.benchmarks_run, 1);
    }
}
