//! Collection strategies: the [`btree_set`] generator used by the
//! workspace's family/ZDD property tests.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `BTreeSet`s of `element` values with a size drawn from the
/// half-open `size` range. Duplicates collapse, so like upstream the
/// resulting set may be smaller than the drawn size.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_elements_in_range() {
        let mut rng = TestRng::for_case("collection-tests", 0);
        let s = btree_set(0usize..6, 0..4);
        for _ in 0..200 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 4);
            assert!(set.iter().all(|&e| e < 6));
        }
    }

    #[test]
    fn nested_sets_compose() {
        let mut rng = TestRng::for_case("collection-tests", 1);
        let s = btree_set(
            btree_set(0usize..6, 0..4).prop_map(|s| s.into_iter().collect::<Vec<_>>()),
            0..3,
        );
        let outer = s.generate(&mut rng);
        assert!(outer.len() < 3);
    }
}
