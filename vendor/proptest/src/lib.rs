//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it actually uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (with optional format args);
//! * strategies: half-open integer ranges, `any::<bool>()`, tuples,
//!   [`Strategy::prop_map`], [`Strategy::prop_recursive`], [`prop_oneof!`],
//!   and [`collection::btree_set`].
//!
//! Semantics are the same *kind* as upstream — seeded pseudo-random case
//! generation with failure messages carrying the failing inputs — but there
//! is **no shrinking** and the byte-level value streams differ from
//! upstream. Test-case generation is fully deterministic: case `i` of test
//! `name` derives its RNG from `hash(name) ⊕ i`, so failures are stable
//! across runs and `.proptest-regressions` files are unnecessary (and
//! ignored).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

/// Drives one property test: generates `config.cases` inputs and runs the
/// body closure; panics (failing the `#[test]`) on the first `Err`.
///
/// Used by the expansion of [`proptest!`]; not part of the public API.
pub fn run_property_test<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng, &mut Vec<String>) -> TestCaseResult,
{
    for i in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(name, i);
        let mut inputs = Vec::new();
        if let Err(e) = case(&mut rng, &mut inputs) {
            panic!(
                "proptest case failed: {name} (case {i}/{cases})\n  inputs: {inputs}\n  {msg}",
                cases = config.cases,
                inputs = inputs.join(", "),
                msg = e,
            );
        }
    }
}

/// The property-test macro. Mirrors upstream's surface for the patterns in
/// this workspace: an optional config header, then `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            { $crate::test_runner::ProptestConfig::default() } $($rest)*
        );
    };
}

/// Internal: expands each `fn` item of a [`proptest!`] invocation.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({ $config:expr }) => {};
    ({ $config:expr }
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property_test(&config, stringify!($name), |rng, inputs| {
                $(
                    let $arg = $crate::Strategy::generate(&($strat), rng);
                    inputs.push(format!(
                        "{} = {:?}", stringify!($arg), &$arg
                    ));
                )+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_items!({ $config } $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: returns a
/// [`TestCaseError`] instead of panicking so the runner can report inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(left, right)` with optional trailing format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Weighted-less union of heterogeneous strategies with a common value
/// type; each arm is boxed and one is picked uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 0usize..10, b in -4i64..4) {
            prop_assert!(a < 10);
            prop_assert!((-4..4).contains(&b), "b = {}", b);
        }

        #[test]
        fn early_return_ok_works(a in 0u64..100) {
            if a % 2 == 0 { return Ok(()); }
            prop_assert_eq!(a % 2, 1);
        }

        #[test]
        fn maps_and_tuples(pair in (0usize..5, 0usize..5).prop_map(|(x, y)| x + y)) {
            prop_assert!(pair <= 8);
        }

        #[test]
        fn oneof_and_bool(v in prop_oneof![Just(0usize), 1usize..3], f in any::<bool>()) {
            prop_assert!(v < 3);
            prop_assert!(usize::from(f) <= 1);
        }

        #[test]
        fn btree_sets_sized(s in crate::collection::btree_set(0usize..6, 0..4)) {
            prop_assert!(s.len() < 4);
            prop_assert!(s.iter().all(|&e| e < 6));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    #[allow(unnameable_test_items)] // the nested #[test] is invoked directly below
    fn failing_case_panics_with_inputs() {
        proptest! {
            #[test]
            fn inner(v in 5usize..6) {
                prop_assert_eq!(v, 0, "v should never be {}", v);
            }
        }
        inner();
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum E {
            Leaf(usize),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::Leaf(n) => {
                    assert!(*n < 4, "leaves are drawn from 0..4");
                    1
                }
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0usize..4)
            .prop_map(E::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::for_case("recursive", 0);
        for _ in 0..200 {
            let e = strat.generate(&mut rng);
            assert!(depth(&e) <= 4);
        }
    }
}
