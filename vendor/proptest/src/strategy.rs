//! Value-generation strategies: the subset of proptest's combinator
//! algebra used by this workspace.
//!
//! A [`Strategy`] is just a deterministic function from a [`TestRng`] to a
//! value — there is no shrinking tree. Combinators compose by value, and
//! [`BoxedStrategy`] erases the concrete type behind an `Rc` so strategies
//! stay cheaply cloneable (test bodies run single-threaded).

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds recursive values: `self` is the leaf case and `recurse` wraps
    /// an inner strategy one level deeper. Nesting is capped at `depth`
    /// levels (each level flips a fair coin between leaf and recursion, so
    /// expected sizes stay small); the `desired_size` / `expected_branch`
    /// hints of upstream are accepted but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased arms (the [`prop_oneof!`] macro).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Half-open integer ranges are strategies: `0usize..10`, `-4i64..4`, …
impl<T: SampleUniform + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Types with a canonical whole-domain strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// Samples a value from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_sample_uniformly_in_bounds() {
        let mut rng = rng();
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[(0usize..10).generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = rng();
        let s = (0usize..5, 0usize..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) <= 8);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = rng();
        assert_eq!(Just(41usize).generate(&mut rng), 41);
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = rng();
        let u = Union::new(vec![Just(0usize).boxed(), Just(1usize).boxed()]);
        let picks: Vec<usize> = (0..100).map(|_| u.generate(&mut rng)).collect();
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = rng();
        let s = any::<bool>();
        let vals: Vec<bool> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
