//! Configuration, RNG, and failure types for the property-test runner.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only the case count is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // upstream's default
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case generator: case `i` of test `name` derives its
/// seed from `hash(name) ⊕ i`, so failures are stable across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The generator for case number `case` of the named test.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            inner: StdRng::seed_from_u64(h.finish() ^ u64::from(case)),
        }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a single test case failed. The stand-in has no rejection/filtering,
/// so this is always a plain failure message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn config_carries_cases() {
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn error_displays_message() {
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
