//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_range`
//! (half-open integer ranges) and `gen_bool`. The generator is SplitMix64,
//! which is deterministic, fast, and plenty for seeded test-case
//! generation. It is **not** the upstream StdRng stream — seeds produce a
//! different (but still deterministic and well-mixed) sequence.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `range` using `next` as the word source.
    fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // 128-bit multiply-shift avoids modulo bias for all spans
                // that fit in 64 bits (every integer type we implement).
                let word = next() as u128;
                let offset = (word.wrapping_mul(span)) >> 64;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample(range, &mut f)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits -> uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
